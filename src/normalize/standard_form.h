// The paper's *standard form* (§2): prenex normal form whose matrix is in
// disjunctive normal form, with free variables preceding the quantifier
// prefix. Built under the assumption that all range relations are
// non-empty; the evaluator adapts at runtime (fold_empty.h) when they are
// not — exactly the division of labour the PASCAL/R compiler uses.

#ifndef PASCALR_NORMALIZE_STANDARD_FORM_H_
#define PASCALR_NORMALIZE_STANDARD_FORM_H_

#include <map>
#include <string>
#include <vector>

#include "normalize/dnf.h"
#include "normalize/prenex.h"
#include "semantics/binder.h"

namespace pascalr {

struct StandardForm {
  /// Free variables first (quantifier == kFree, in declaration order), then
  /// the prenex prefix left to right.
  std::vector<QuantifiedVar> prefix;
  DnfMatrix matrix;

  // Context carried along for planning, execution and runtime adaptation.
  std::vector<OutputComponent> projection;
  Schema output_schema;
  std::map<std::string, VarBinding> vars;
  /// The bound wff in NNF, *before* prenexing — the semantically exact
  /// form that FoldEmptyRanges operates on when a range is empty.
  FormulaPtr original_nnf;

  size_t NumFreeVars() const {
    size_t n = 0;
    while (n < prefix.size() && prefix[n].quantifier == Quantifier::kFree) ++n;
    return n;
  }

  const QuantifiedVar* FindVar(const std::string& name) const {
    for (const QuantifiedVar& qv : prefix) {
      if (qv.var == name) return &qv;
    }
    return nullptr;
  }

  StandardForm Clone() const;

  /// Example 2.2-style rendering: projection, prefix lines, DNF matrix.
  std::string ToString() const;
};

/// Normalises a bound query: NNF -> prenex -> DNF matrix.
Result<StandardForm> BuildStandardForm(BoundQuery query);

/// Rebuilds a standard form from an adapted (already bound, NNF) formula —
/// the runtime path after empty-range folding. `base` supplies projection,
/// output schema, bindings and free-variable ranges.
Result<StandardForm> RebuildStandardForm(const StandardForm& base,
                                         FormulaPtr adapted_nnf);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_STANDARD_FORM_H_
