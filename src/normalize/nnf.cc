#include "normalize/nnf.h"

namespace pascalr {

namespace {

FormulaPtr NnfImpl(FormulaPtr f, bool negated);

FormulaPtr NnfChildren(Formula* node, bool negated, FormulaKind out_kind) {
  std::vector<FormulaPtr> kids = node->TakeChildren();
  for (FormulaPtr& c : kids) c = NnfImpl(std::move(c), negated);
  return out_kind == FormulaKind::kAnd ? Formula::And(std::move(kids))
                                       : Formula::Or(std::move(kids));
}

FormulaPtr NnfImpl(FormulaPtr f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return Formula::Constant(negated ? !f->const_value() : f->const_value());
    case FormulaKind::kCompare:
      if (negated) return Formula::Compare(f->term().Negated());
      return f;
    case FormulaKind::kNot:
      return NnfImpl(f->TakeChild(), !negated);
    case FormulaKind::kAnd:
      return NnfChildren(f.get(), negated,
                         negated ? FormulaKind::kOr : FormulaKind::kAnd);
    case FormulaKind::kOr:
      return NnfChildren(f.get(), negated,
                         negated ? FormulaKind::kAnd : FormulaKind::kOr);
    case FormulaKind::kQuant: {
      Quantifier q = f->quantifier();
      if (negated) {
        q = (q == Quantifier::kSome) ? Quantifier::kAll : Quantifier::kSome;
      }
      FormulaPtr body = NnfImpl(f->TakeChild(), negated);
      return Formula::Quant(q, f->var(), std::move(f->range()),
                            std::move(body));
    }
  }
  return f;
}

}  // namespace

FormulaPtr ToNnf(FormulaPtr f) { return NnfImpl(std::move(f), false); }

bool IsNnf(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return true;
    case FormulaKind::kNot:
      return false;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) {
        if (!IsNnf(*c)) return false;
      }
      return true;
    case FormulaKind::kQuant:
      return IsNnf(f.child());
  }
  return false;
}

}  // namespace pascalr
