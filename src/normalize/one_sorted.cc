#include "normalize/one_sorted.h"

#include "base/str_util.h"

namespace pascalr {

namespace {

OneSortedPtr MakeNode(OneSortedFormula::Kind kind) {
  auto n = std::make_unique<OneSortedFormula>();
  n->kind = kind;
  return n;
}

/// Membership guard for a (possibly extended) range: `var IN rel` AND the
/// converted restriction.
OneSortedPtr RangeGuard(const std::string& var, const RangeExpr& range) {
  auto in = MakeNode(OneSortedFormula::Kind::kIn);
  in->var = var;
  in->relation = range.relation;
  if (!range.IsExtended()) return in;
  auto conj = MakeNode(OneSortedFormula::Kind::kAnd);
  conj->children.push_back(std::move(in));
  conj->children.push_back(ToOneSorted(*range.restriction));
  return conj;
}

}  // namespace

OneSortedPtr ToOneSorted(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kConst: {
      auto n = MakeNode(OneSortedFormula::Kind::kConst);
      n->const_value = f.const_value();
      return n;
    }
    case FormulaKind::kCompare: {
      auto n = MakeNode(OneSortedFormula::Kind::kCompare);
      n->term = f.term();
      return n;
    }
    case FormulaKind::kNot: {
      auto n = MakeNode(OneSortedFormula::Kind::kNot);
      n->children.push_back(ToOneSorted(f.child()));
      return n;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      auto n = MakeNode(f.kind() == FormulaKind::kAnd
                            ? OneSortedFormula::Kind::kAnd
                            : OneSortedFormula::Kind::kOr);
      for (const FormulaPtr& c : f.children()) {
        n->children.push_back(ToOneSorted(*c));
      }
      return n;
    }
    case FormulaKind::kQuant: {
      if (f.quantifier() == Quantifier::kSome) {
        // SOME rec ((rec IN rel) AND W)
        auto body = MakeNode(OneSortedFormula::Kind::kAnd);
        body->children.push_back(RangeGuard(f.var(), f.range()));
        body->children.push_back(ToOneSorted(f.child()));
        auto n = MakeNode(OneSortedFormula::Kind::kSome);
        n->var = f.var();
        n->children.push_back(std::move(body));
        return n;
      }
      // ALL rec (NOT (rec IN rel) OR W)
      auto neg = MakeNode(OneSortedFormula::Kind::kNot);
      neg->children.push_back(RangeGuard(f.var(), f.range()));
      auto body = MakeNode(OneSortedFormula::Kind::kOr);
      body->children.push_back(std::move(neg));
      body->children.push_back(ToOneSorted(f.child()));
      auto n = MakeNode(OneSortedFormula::Kind::kAll);
      n->var = f.var();
      n->children.push_back(std::move(body));
      return n;
    }
  }
  return nullptr;
}

std::string OneSortedFormula::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return const_value ? "TRUE" : "FALSE";
    case Kind::kCompare:
      return term.ToString();
    case Kind::kIn:
      return "(" + var + " IN " + relation + ")";
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const OneSortedPtr& c : children) parts.push_back(c->ToString());
      return "(" + Join(parts, kind == Kind::kAnd ? " AND " : " OR ") + ")";
    }
    case Kind::kSome:
    case Kind::kAll:
      return std::string(kind == Kind::kSome ? "SOME " : "ALL ") + var + " " +
             children[0]->ToString();
  }
  return "?";
}

namespace {

Result<Value> EvalOperand(const Operand& op, const Database& db,
                          const std::map<std::string, Ref>& bindings) {
  if (op.is_literal()) return op.literal;
  auto it = bindings.find(op.var);
  if (it == bindings.end()) {
    return Status::Internal("unbound variable '" + op.var + "'");
  }
  PASCALR_ASSIGN_OR_RETURN(const Tuple* tuple, db.Deref(it->second));
  if (op.component_pos < 0 ||
      static_cast<size_t>(op.component_pos) >= tuple->size()) {
    return Status::TypeMismatch(
        "ill-sorted component access " + op.ToString() +
        " (element of the wrong sort reached an unguarded term)");
  }
  return tuple->at(static_cast<size_t>(op.component_pos));
}

}  // namespace

Result<bool> EvaluateOneSorted(const OneSortedFormula& f, const Database& db,
                               std::map<std::string, Ref>* bindings) {
  switch (f.kind) {
    case OneSortedFormula::Kind::kConst:
      return f.const_value;
    case OneSortedFormula::Kind::kCompare: {
      PASCALR_ASSIGN_OR_RETURN(Value lhs,
                               EvalOperand(f.term.lhs, db, *bindings));
      PASCALR_ASSIGN_OR_RETURN(Value rhs,
                               EvalOperand(f.term.rhs, db, *bindings));
      if (!lhs.SameKind(rhs)) {
        return Status::TypeMismatch("comparing values of different sorts in " +
                                    f.term.ToString());
      }
      return lhs.Satisfies(f.term.op, rhs);
    }
    case OneSortedFormula::Kind::kIn: {
      auto it = bindings->find(f.var);
      if (it == bindings->end()) {
        return Status::Internal("unbound variable '" + f.var + "'");
      }
      const Relation* rel = db.FindRelation(f.relation);
      if (rel == nullptr) {
        return Status::NotFound("no relation named '" + f.relation + "'");
      }
      return rel->IsLive(it->second);
    }
    case OneSortedFormula::Kind::kNot: {
      PASCALR_ASSIGN_OR_RETURN(bool v,
                               EvaluateOneSorted(*f.children[0], db, bindings));
      return !v;
    }
    case OneSortedFormula::Kind::kAnd: {
      for (const OneSortedPtr& c : f.children) {
        PASCALR_ASSIGN_OR_RETURN(bool v, EvaluateOneSorted(*c, db, bindings));
        if (!v) return false;  // short-circuit protects unguarded terms
      }
      return true;
    }
    case OneSortedFormula::Kind::kOr: {
      for (const OneSortedPtr& c : f.children) {
        PASCALR_ASSIGN_OR_RETURN(bool v, EvaluateOneSorted(*c, db, bindings));
        if (v) return true;
      }
      return false;
    }
    case OneSortedFormula::Kind::kSome:
    case OneSortedFormula::Kind::kAll: {
      bool is_some = f.kind == OneSortedFormula::Kind::kSome;
      // The universe: every live element of every relation.
      for (const std::string& rel_name : db.RelationNames()) {
        const Relation* rel = db.FindRelation(rel_name);
        std::vector<Ref> refs = rel->AllRefs();
        for (const Ref& ref : refs) {
          (*bindings)[f.var] = ref;
          Result<bool> v = EvaluateOneSorted(*f.children[0], db, bindings);
          bindings->erase(f.var);
          if (!v.ok()) return v;
          if (is_some && *v) return true;
          if (!is_some && !*v) return false;
        }
      }
      return !is_some;  // empty universe: SOME false, ALL true
    }
  }
  return Status::Internal("unreachable one-sorted kind");
}

}  // namespace pascalr
