// Disjunctive normal form of a quantifier-free matrix: a disjunction of
// conjunctions of join terms, with constant folding, duplicate-term
// elimination, contradiction pruning (a conjunction containing both a term
// and its complement is dropped), and duplicate-conjunction elimination.

#ifndef PASCALR_NORMALIZE_DNF_H_
#define PASCALR_NORMALIZE_DNF_H_

#include <string>
#include <vector>

#include "calculus/ast.h"

namespace pascalr {

/// A conjunction of join terms. An empty term list means TRUE.
struct Conjunction {
  std::vector<JoinTerm> terms;

  /// Distinct variables referenced by the conjunction, in first-use order.
  std::vector<std::string> Variables() const;
  bool References(const std::string& var) const;
  /// Terms referencing `var` (monadic over var or dyadic touching it).
  std::vector<const JoinTerm*> TermsOver(const std::string& var) const;
  bool operator==(const Conjunction& other) const;
  std::string ToString() const;
};

/// Disjunction of conjunctions. No disjuncts means FALSE; a single empty
/// conjunction means TRUE.
struct DnfMatrix {
  std::vector<Conjunction> disjuncts;

  bool IsFalse() const { return disjuncts.empty(); }
  bool IsTrue() const {
    return disjuncts.size() == 1 && disjuncts[0].terms.empty();
  }
  std::string ToString() const;
  /// Rebuilds an equivalent Formula tree.
  FormulaPtr ToFormula() const;
};

/// Converts a quantifier-free NNF formula to DNF. The expansion of AND over
/// OR is worst-case exponential in the number of OR alternatives — inherent
/// to DNF — which the paper accepts because selection expressions are small.
DnfMatrix ToDnf(const Formula& matrix);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_DNF_H_
