#include "storage/relation.h"

#include "base/str_util.h"

namespace pascalr {

// Unanalyzed: write_mod_ is read latch-free here, but only on the path
// where this thread IS the (serialised) write statement — no other thread
// can be mutating it, and the read is of this thread's own prior writes.
uint64_t Relation::ReadWatermark() const NO_THREAD_SAFETY_ANALYSIS {
  if (concurrency_ != nullptr) {
    // Inside a write statement, the statement reads its own (still
    // unpublished) mutations. Writers are serialised, so write_mod_ is
    // stable for the statement's duration.
    WriteBatch* batch = CurrentWriteBatch();
    if (batch != nullptr && batch->state() == concurrency_) return write_mod_;
    const Snapshot* snap = CurrentSnapshot();
    if (snap != nullptr && snap->origin == concurrency_) {
      return snap->WatermarkFor(id_);
    }
  }
  return published_mod_.load(std::memory_order_acquire);
}

uint64_t Relation::mod_count() const { return ReadWatermark(); }

// Unanalyzed for the same reason as ReadWatermark: live_count_ is read
// latch-free only from inside this thread's own serialised write statement.
size_t Relation::cardinality() const NO_THREAD_SAFETY_ANALYSIS {
  if (concurrency_ != nullptr) {
    WriteBatch* batch = CurrentWriteBatch();
    if (batch != nullptr && batch->state() == concurrency_) {
      return live_count_;
    }
    const Snapshot* snap = CurrentSnapshot();
    if (snap != nullptr && snap->origin == concurrency_) {
      return snap->LiveCountFor(id_);
    }
  }
  return published_live_.load(std::memory_order_acquire);
}

uint32_t Relation::AllocateSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot_index = free_slots_.back();
    free_slots_.pop_back();
    return slot_index;
  }
  return static_cast<uint32_t>(slots_.Append());
}

void Relation::AfterMutation() {
  if (serving()) {
    WriteBatch* batch = CurrentWriteBatch();
    if (batch != nullptr && batch->state() == concurrency_) {
      batch->Touch(this);
      return;
    }
  }
  PublishPendingVersions();
}

// Unanalyzed: called either under latch_ (AfterMutation) or latch-free
// from WriteBatch::Commit under commit_mu — where the writer-side fields
// are quiescent because the owning statement has finished mutating and
// writers are serialised on the database write mutex.
void Relation::PublishPendingVersions() NO_THREAD_SAFETY_ANALYSIS {
  published_live_.store(live_count_, std::memory_order_release);
  published_mod_.store(write_mod_, std::memory_order_release);
}

Result<Ref> Relation::Insert(Tuple tuple) {
  PASCALR_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  Tuple key = schema_.KeyOf(tuple);
  WriterMutexLock latch(latch_);
  auto it = key_to_slot_.find(key);
  uint32_t prev_head = kNoSlot;
  if (it != key_to_slot_.end()) {
    // A map entry may be a tombstone head (serving mode keeps dead chains
    // reachable for snapshot readers); only a version visible to this
    // writer makes the key a duplicate.
    if (VisibleAt(slots_[it->second], write_mod_)) {
      return Status::AlreadyExists("relation '" + name_ +
                                   "' already contains key " + key.ToString());
    }
    prev_head = it->second;
  }
  const uint64_t mod = write_mod_ + 1;
  const uint32_t slot_index = AllocateSlot();
  Slot& slot = slots_[slot_index];
  slot.tuple = std::move(tuple);
  ++slot.generation;
  slot.prev = prev_head;
  RelaxedStore(slot.died, kNeverDies);  // ordered by the born release below
  // The born stamp goes last: it is what makes the fully constructed
  // version reachable to lock-free scans.
  slot.born.store(mod, std::memory_order_release);
  if (it != key_to_slot_.end()) {
    it->second = slot_index;
  } else {
    key_to_slot_.emplace(std::move(key), slot_index);
  }
  write_mod_ = mod;
  ++live_count_;
  if (serving()) delta_.NoteAppend();
  AfterMutation();
  return Ref{id_, slot_index, slot.generation};
}

Result<Ref> Relation::Upsert(Tuple tuple) {
  PASCALR_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  Tuple key = schema_.KeyOf(tuple);
  WriterMutexLock latch(latch_);
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end() ||
      !VisibleAt(slots_[it->second], write_mod_)) {
    latch.Release();
    return Insert(std::move(tuple));
  }
  const uint32_t old_index = it->second;
  if (!serving()) {
    // Legacy: replace in place. The element identity (key) is unchanged;
    // existing refs stay valid.
    Slot& slot = slots_[old_index];
    slot.tuple = std::move(tuple);
    ++write_mod_;
    AfterMutation();
    return Ref{id_, old_index, slot.generation};
  }
  // Serving: retire the current version and chain a replacement, so any
  // snapshot captured before this statement commits keeps reading the old
  // tuple.
  const uint64_t mod = write_mod_ + 1;
  const uint32_t slot_index = AllocateSlot();
  Slot& slot = slots_[slot_index];
  slot.tuple = std::move(tuple);
  ++slot.generation;
  slot.prev = old_index;
  RelaxedStore(slot.died, kNeverDies);  // ordered by the born release below
  slot.born.store(mod, std::memory_order_release);
  slots_[old_index].died.store(mod, std::memory_order_release);
  if (old_index < delta_.base_size()) delta_.NoteBaseDelete();
  it->second = slot_index;
  write_mod_ = mod;
  delta_.NoteAppend();
  AfterMutation();
  return Ref{id_, slot_index, slot.generation};
}

Status Relation::EraseByKey(const Tuple& key) {
  WriterMutexLock latch(latch_);
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end() ||
      !VisibleAt(slots_[it->second], write_mod_)) {
    return Status::NotFound("relation '" + name_ + "' has no key " +
                            key.ToString());
  }
  const uint32_t slot_index = it->second;
  const uint64_t mod = write_mod_ + 1;
  Slot& slot = slots_[slot_index];
  slot.died.store(mod, std::memory_order_release);
  if (serving()) {
    // Keep the map entry as a tombstone head: snapshot readers walk the
    // chain from it, and a later insert of the same key links through it.
    if (slot_index < delta_.base_size()) delta_.NoteBaseDelete();
  } else {
    // Legacy: free the slot immediately for reuse.
    key_to_slot_.erase(it);
    slot.tuple = Tuple();
    slot.prev = kNoSlot;
    free_slots_.push_back(slot_index);
  }
  write_mod_ = mod;
  --live_count_;
  AfterMutation();
  return Status::OK();
}

Status Relation::EraseByRef(const Ref& ref) {
  Tuple key;
  {
    ReaderMutexLock latch(latch_);
    if (ref.relation != id_ || ref.slot >= slots_.size()) {
      return Status::NotFound("dangling or foreign reference " +
                              ref.ToString());
    }
    const Slot& slot = slots_[ref.slot];
    if (!VisibleAt(slot, write_mod_) || slot.generation != ref.generation) {
      return Status::NotFound("dangling or foreign reference " +
                              ref.ToString());
    }
    key = schema_.KeyOf(slot.tuple);
  }
  return EraseByKey(key);
}

Result<Ref> Relation::RefByKey(const Tuple& key) const {
  const uint64_t watermark = ReadWatermark();
  ReaderMutexLock latch(latch_);
  auto it = key_to_slot_.find(key);
  uint32_t slot_index = it == key_to_slot_.end() ? kNoSlot : it->second;
  while (slot_index != kNoSlot) {
    const Slot& slot = slots_[slot_index];
    if (VisibleAt(slot, watermark)) {
      return Ref{id_, slot_index, slot.generation};
    }
    slot_index = slot.prev;
  }
  return Status::NotFound("relation '" + name_ + "' has no key " +
                          key.ToString());
}

Result<const Tuple*> Relation::SelectByKey(const Tuple& key) const {
  const uint64_t watermark = ReadWatermark();
  ReaderMutexLock latch(latch_);
  auto it = key_to_slot_.find(key);
  uint32_t slot_index = it == key_to_slot_.end() ? kNoSlot : it->second;
  while (slot_index != kNoSlot) {
    const Slot& slot = slots_[slot_index];
    if (VisibleAt(slot, watermark)) return &slot.tuple;
    slot_index = slot.prev;
  }
  return Status::NotFound("relation '" + name_ + "' has no key " +
                          key.ToString());
}

Result<const Tuple*> Relation::Deref(const Ref& ref) const {
  if (ref.relation != id_) {
    return Status::InvalidArgument(
        StrFormat("reference into relation %u dereferenced against '%s' (%u)",
                  ref.relation, name_.c_str(), id_));
  }
  const uint64_t watermark = ReadWatermark();
  if (ref.slot >= slots_.size()) {
    return Status::NotFound("dangling reference " + ref.ToString() +
                            " into relation '" + name_ + "'");
  }
  const Slot& slot = slots_[ref.slot];
  if (!VisibleAt(slot, watermark) || slot.generation != ref.generation) {
    return Status::NotFound("dangling reference " + ref.ToString() +
                            " into relation '" + name_ + "'");
  }
  return &slot.tuple;
}

bool Relation::IsLive(const Ref& ref) const {
  if (ref.relation != id_ || ref.slot >= slots_.size()) return false;
  const Slot& slot = slots_[ref.slot];
  return VisibleAt(slot, ReadWatermark()) && slot.generation == ref.generation;
}

void Relation::Scan(
    const std::function<bool(const Ref&, const Tuple&)>& visit) const {
  const uint64_t watermark = ReadWatermark();
  const size_t published_size = slots_.size();
  ConcurrencyCounters* counters =
      serving() ? &concurrency_->counters : nullptr;
  delta_.MergeScan(published_size, counters, [&](size_t i) {
    const Slot& slot = slots_[i];
    if (!VisibleAt(slot, watermark)) return true;
    return visit(Ref{id_, static_cast<uint32_t>(i), slot.generation},
                 slot.tuple);
  });
}

std::vector<Ref> Relation::AllRefs() const {
  std::vector<Ref> out;
  out.reserve(cardinality());
  Scan([&](const Ref& r, const Tuple&) {
    out.push_back(r);
    return true;
  });
  return out;
}

void Relation::Clear() {
  WriterMutexLock latch(latch_);
  if (!serving()) {
    slots_.Reset();
    free_slots_.clear();
    key_to_slot_.clear();
    live_count_ = 0;
    ++write_mod_;
    AfterMutation();
    return;
  }
  // Serving: one mass delete — every currently visible version is stamped
  // dead at one mod; snapshots captured earlier keep reading everything.
  const uint64_t mod = write_mod_ + 1;
  for (const auto& [key, head] : key_to_slot_) {
    (void)key;
    Slot& slot = slots_[head];
    if (!VisibleAt(slot, write_mod_)) continue;
    slot.died.store(mod, std::memory_order_release);
    if (head < delta_.base_size()) delta_.NoteBaseDelete();
  }
  write_mod_ = mod;
  live_count_ = 0;
  AfterMutation();
}

size_t Relation::CompactVersions() {
  // Fully exclusive (Database write mutex + registry quiesce): plain
  // stores, no readers to race with.
  WriterMutexLock latch(latch_);
  const uint64_t published = RelaxedLoad(published_mod_);
  const size_t size = slots_.size();
  // Drop map heads whose whole chain is dead; cut surviving chains.
  for (auto it = key_to_slot_.begin(); it != key_to_slot_.end();) {
    if (RelaxedLoad(slots_[it->second].died) <= published) {
      it = key_to_slot_.erase(it);
    } else {
      ++it;
    }
  }
  size_t retired = 0;
  for (size_t i = 0; i < size; ++i) {
    Slot& slot = slots_[i];
    if (RelaxedLoad(slot.born) == kNeverVisible) {
      continue;  // already free
    }
    if (RelaxedLoad(slot.died) <= published) {
      slot.tuple = Tuple();
      ++slot.generation;  // stale refs detect the reclamation
      slot.prev = kNoSlot;
      RelaxedStore(slot.died, kNeverDies);
      RelaxedStore(slot.born, kNeverVisible);
      free_slots_.push_back(static_cast<uint32_t>(i));
      ++retired;
    } else {
      // Every predecessor version is dead by definition (prev is always
      // older); the chain is no longer needed.
      slot.prev = kNoSlot;
    }
  }
  delta_.Compacted(size, published);
  return retired;
}

std::string Relation::DebugString(size_t max_elements) const {
  std::string out =
      StrFormat("%s (%zu elements): ", name_.c_str(), cardinality());
  size_t shown = 0;
  Scan([&](const Ref&, const Tuple& t) {
    if (shown == max_elements) {
      out += "...";
      return false;
    }
    if (shown > 0) out += ", ";
    out += t.ToString();
    ++shown;
    return true;
  });
  return out;
}

}  // namespace pascalr
