#include "storage/relation.h"

#include "base/str_util.h"

namespace pascalr {

Result<Ref> Relation::Insert(Tuple tuple) {
  PASCALR_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  Tuple key = schema_.KeyOf(tuple);
  if (key_to_slot_.find(key) != key_to_slot_.end()) {
    return Status::AlreadyExists("relation '" + name_ +
                                 "' already contains key " + key.ToString());
  }
  uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.tuple = std::move(tuple);
  slot.live = true;
  ++slot.generation;
  key_to_slot_.emplace(std::move(key), slot_index);
  ++live_count_;
  ++mod_count_;
  return Ref{id_, slot_index, slot.generation};
}

Result<Ref> Relation::Upsert(Tuple tuple) {
  PASCALR_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  Tuple key = schema_.KeyOf(tuple);
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) return Insert(std::move(tuple));
  Slot& slot = slots_[it->second];
  slot.tuple = std::move(tuple);
  ++mod_count_;
  // The element identity (key) is unchanged; existing refs stay valid.
  return Ref{id_, it->second, slot.generation};
}

Status Relation::EraseByKey(const Tuple& key) {
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) {
    return Status::NotFound("relation '" + name_ + "' has no key " +
                            key.ToString());
  }
  uint32_t slot_index = it->second;
  key_to_slot_.erase(it);
  slots_[slot_index].live = false;
  slots_[slot_index].tuple = Tuple();
  free_slots_.push_back(slot_index);
  --live_count_;
  ++mod_count_;
  return Status::OK();
}

Status Relation::EraseByRef(const Ref& ref) {
  if (!IsLive(ref)) {
    return Status::NotFound("dangling or foreign reference " + ref.ToString());
  }
  return EraseByKey(schema_.KeyOf(slots_[ref.slot].tuple));
}

Result<Ref> Relation::RefByKey(const Tuple& key) const {
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) {
    return Status::NotFound("relation '" + name_ + "' has no key " +
                            key.ToString());
  }
  return Ref{id_, it->second, slots_[it->second].generation};
}

Result<const Tuple*> Relation::SelectByKey(const Tuple& key) const {
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) {
    return Status::NotFound("relation '" + name_ + "' has no key " +
                            key.ToString());
  }
  return &slots_[it->second].tuple;
}

Result<const Tuple*> Relation::Deref(const Ref& ref) const {
  if (ref.relation != id_) {
    return Status::InvalidArgument(
        StrFormat("reference into relation %u dereferenced against '%s' (%u)",
                  ref.relation, name_.c_str(), id_));
  }
  if (ref.slot >= slots_.size() || !slots_[ref.slot].live ||
      slots_[ref.slot].generation != ref.generation) {
    return Status::NotFound("dangling reference " + ref.ToString() +
                            " into relation '" + name_ + "'");
  }
  return &slots_[ref.slot].tuple;
}

bool Relation::IsLive(const Ref& ref) const {
  return ref.relation == id_ && ref.slot < slots_.size() &&
         slots_[ref.slot].live && slots_[ref.slot].generation == ref.generation;
}

void Relation::Scan(
    const std::function<bool(const Ref&, const Tuple&)>& visit) const {
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (!slot.live) continue;
    if (!visit(Ref{id_, i, slot.generation}, slot.tuple)) return;
  }
}

std::vector<Ref> Relation::AllRefs() const {
  std::vector<Ref> out;
  out.reserve(live_count_);
  Scan([&](const Ref& r, const Tuple&) {
    out.push_back(r);
    return true;
  });
  return out;
}

void Relation::Clear() {
  slots_.clear();
  free_slots_.clear();
  key_to_slot_.clear();
  live_count_ = 0;
  ++mod_count_;
}

std::string Relation::DebugString(size_t max_elements) const {
  std::string out =
      StrFormat("%s (%zu elements): ", name_.c_str(), live_count_);
  size_t shown = 0;
  Scan([&](const Ref&, const Tuple& t) {
    if (shown == max_elements) {
      out += "...";
      return false;
    }
    if (shown > 0) out += ", ";
    out += t.ToString();
    ++shown;
    return true;
  });
  return out;
}

}  // namespace pascalr
