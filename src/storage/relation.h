// Relation: a variable-size set of identically structured elements with a
// declared key (paper §2). Storage is an in-memory slotted heap: slots are
// stable across unrelated inserts/deletes, so Refs remain valid until their
// element is deleted. A built-in hash map from key to slot implements the
// key-oriented selector rel[keyval] (paper §3.1).
//
// Concurrency (src/concurrency/): every slot is a *version* stamped with
// the mod counts it was born at and died at, and readers resolve
// visibility against a watermark — the ambient Snapshot's captured mod
// count, or the relation's published mod count when no snapshot is
// installed. The slot heap is a StableVector (stable addresses, atomic
// published size), so Scan / AllRefs / Deref are entirely lock-free: a
// reader never blocks behind a writer, and a writer publishes a version
// only after it is fully constructed (born stamp is store-released last).
// Key lookups share the key-map latch with mutators — held per operation,
// never across a statement. The DeltaLayer tracks the slots appended or
// killed since the last compaction; Database::Compact reclaims dead
// versions under the SnapshotRegistry's exclusive quiesce.
//
// Two behavioural modes, switched by ConcurrencyState::serving:
//  - legacy (default, every single-threaded test): in-place Upsert keeps
//    existing Refs valid, deletes free their slot immediately, freed slots
//    are reused — byte-identical behaviour to the pre-concurrency engine.
//  - serving (SessionManager / EnableConcurrentServing): Upsert and
//    EraseByKey append/stamp versions instead of destroying state that a
//    concurrent snapshot may still read; publication of a statement's
//    stamps is deferred to its WriteBatch commit, so a snapshot observes
//    either all of a statement's effects or none.

#ifndef PASCALR_STORAGE_RELATION_H_
#define PASCALR_STORAGE_RELATION_H_

#include <atomic>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/atomic_util.h"
#include "base/mutex.h"
#include "base/stable_vector.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "concurrency/delta.h"
#include "concurrency/snapshot.h"
#include "storage/ref.h"
#include "value/schema.h"
#include "value/tuple.h"

namespace pascalr {

class Relation {
 public:
  Relation(RelationId id, std::string name, Schema schema)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  RelationId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of elements visible at the caller's watermark: the ambient
  /// snapshot's captured count, or the published count otherwise (within
  /// a write statement, the statement's own pending mutations count).
  size_t cardinality() const;
  bool empty() const { return cardinality() == 0; }

  /// Monotonic counter bumped by every successful mutation; the catalog
  /// uses it to detect stale permanent indexes and it doubles as the
  /// version clock for snapshot visibility. Ambient-aware like
  /// cardinality(): under a snapshot it reports the captured watermark,
  /// inside a write statement the statement's own (unpublished) count.
  uint64_t mod_count() const;

  /// The last *published* mod count — what a snapshot captured now would
  /// record as this relation's watermark.
  uint64_t published_mod() const {
    return published_mod_.load(std::memory_order_acquire);
  }

  /// The published live-element count (pairs with published_mod()); what a
  /// snapshot captured now would record as this relation's cardinality.
  size_t published_live() const {
    return published_live_.load(std::memory_order_acquire);
  }

  /// PASCAL/R `:+` — inserts one element. Rejects schema violations and
  /// duplicate keys (relations are sets keyed by the declared key).
  Result<Ref> Insert(Tuple tuple);

  /// Inserts, replacing any existing element with the same key (PASCAL/R
  /// assignment-style update). Returns the ref of the stored element.
  /// Legacy mode replaces in place (existing refs stay valid); serving
  /// mode appends a new version, so refs to the old version dangle once
  /// the replacement publishes.
  Result<Ref> Upsert(Tuple tuple);

  /// PASCAL/R `:-` — deletes the element with the given key.
  Status EraseByKey(const Tuple& key);

  /// Deletes the element a ref points to (generation-checked).
  Status EraseByRef(const Ref& ref);

  /// @rel[keyval]: the reference to the element with key `key`.
  Result<Ref> RefByKey(const Tuple& key) const;

  /// rel[keyval]: the element with key `key`.
  Result<const Tuple*> SelectByKey(const Tuple& key) const;

  /// r@ — dereference. Fails with NotFound on dangling refs (deleted or
  /// reused slot) and InvalidArgument on refs of other relations.
  Result<const Tuple*> Deref(const Ref& ref) const;

  /// True if `ref` currently names a visible element of this relation.
  bool IsLive(const Ref& ref) const;

  /// One-element-at-a-time scan (paper §4.1's "reading the relation") of
  /// the versions visible at the caller's watermark, in slot order (base
  /// region, then the delta region — see concurrency/delta.h). The
  /// visitor receives each visible element and its ref; returning false
  /// stops the scan early. Lock-free.
  void Scan(const std::function<bool(const Ref&, const Tuple&)>& visit) const;

  /// All visible refs in slot order.
  std::vector<Ref> AllRefs() const;

  /// Removes every element. Legacy mode releases all storage; serving
  /// mode stamps every visible version dead (snapshots keep reading).
  void Clear();

  std::string DebugString(size_t max_elements = 16) const;

  // ---- concurrency plumbing (Database / WriteBatch / compaction) ------

  /// Attaches the owning Database's shared concurrency state. Relations
  /// constructed standalone (unit tests) stay unattached and permanently
  /// legacy-mode.
  void AttachConcurrency(ConcurrencyState* state) { concurrency_ = state; }

  /// Makes every stamp this relation's pending statement wrote visible to
  /// new watermarks. Called by WriteBatch::Commit under commit_mu.
  void PublishPendingVersions();

  /// Reclaims every version dead at the published watermark: payload
  /// freed, generation bumped (stale refs detect), slot returned to the
  /// free list; surviving versions' chains are cut and the delta folds
  /// into the base. Caller must hold the Database write mutex AND the
  /// registry quiesce (no concurrent readers or writers). Returns the
  /// number of versions retired.
  size_t CompactVersions();

  const DeltaLayer& delta() const { return delta_; }

 private:
  /// One version of one element. `born`/`died` are mod-count stamps:
  /// the version is visible at watermark w iff born <= w < died. `prev`
  /// chains to the previous version of the same key (kNoSlot when none),
  /// so key lookups under an old snapshot can walk back to the version
  /// that was current then.
  struct Slot {
    Tuple tuple;
    uint32_t generation = 0;
    uint32_t prev = kNoSlot;
    std::atomic<uint64_t> born{kNeverVisible};
    std::atomic<uint64_t> died{kNeverDies};
  };

  static constexpr uint32_t kNoSlot = UINT32_MAX;
  /// Sentinel `born` of a free / mid-construction slot: no watermark
  /// reaches it, so lock-free readers skip the slot without touching its
  /// tuple or generation.
  static constexpr uint64_t kNeverVisible = UINT64_MAX;
  static constexpr uint64_t kNeverDies = UINT64_MAX;

  static bool VisibleAt(const Slot& slot, uint64_t watermark) {
    if (slot.born.load(std::memory_order_acquire) > watermark) return false;
    return slot.died.load(std::memory_order_acquire) > watermark;
  }

  bool serving() const {
    // Relaxed: the serving flip happens before concurrent sessions exist.
    return concurrency_ != nullptr && RelaxedLoad(concurrency_->serving);
  }

  /// The watermark this thread reads at (snapshot / write-statement /
  /// published) — the value mod_count() reports.
  uint64_t ReadWatermark() const;

  /// Pops a free slot or appends a fresh one.
  uint32_t AllocateSlot() REQUIRES(latch_);

  /// Mutation epilogue: hand the pending publication to the ambient
  /// WriteBatch (serving mode inside a statement) or publish immediately.
  void AfterMutation() REQUIRES(latch_);

  RelationId id_;
  std::string name_;
  Schema schema_;
  /// Deliberately unguarded: stable addresses + atomic published size +
  /// the born/died release protocol make slot reads lock-free (see file
  /// comment); mutators touch it only under latch_.
  StableVector<Slot> slots_;
  std::vector<uint32_t> free_slots_ GUARDED_BY(latch_);
  /// Key -> head of its version chain (latest version, live or dead).
  /// Mutators exclusive, key lookups shared.
  std::unordered_map<Tuple, uint32_t, TupleHash> key_to_slot_
      GUARDED_BY(latch_);
  mutable SharedMutex latch_;

  /// Writer-side state (current, incl. unpublished). Guarded by latch_
  /// for mutators; ReadWatermark/cardinality also read them latch-free
  /// from inside the serialised write statement (see relation.cc).
  size_t live_count_ GUARDED_BY(latch_) = 0;
  uint64_t write_mod_ GUARDED_BY(latch_) = 0;
  std::atomic<size_t> published_live_{0};
  std::atomic<uint64_t> published_mod_{0};

  DeltaLayer delta_;
  ConcurrencyState* concurrency_ = nullptr;
};

}  // namespace pascalr

#endif  // PASCALR_STORAGE_RELATION_H_
