// Relation: a variable-size set of identically structured elements with a
// declared key (paper §2). Storage is an in-memory slotted heap: slots are
// stable across unrelated inserts/deletes, so Refs remain valid until their
// element is deleted. A built-in hash map from key to slot implements the
// key-oriented selector rel[keyval] (paper §3.1).

#ifndef PASCALR_STORAGE_RELATION_H_
#define PASCALR_STORAGE_RELATION_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "storage/ref.h"
#include "value/schema.h"
#include "value/tuple.h"

namespace pascalr {

class Relation {
 public:
  Relation(RelationId id, std::string name, Schema schema)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  RelationId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live elements.
  size_t cardinality() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Monotonic counter bumped by every successful mutation; the catalog
  /// uses it to detect stale permanent indexes.
  uint64_t mod_count() const { return mod_count_; }

  /// PASCAL/R `:+` — inserts one element. Rejects schema violations and
  /// duplicate keys (relations are sets keyed by the declared key).
  Result<Ref> Insert(Tuple tuple);

  /// Inserts, replacing any existing element with the same key (PASCAL/R
  /// assignment-style update). Returns the ref of the stored element.
  Result<Ref> Upsert(Tuple tuple);

  /// PASCAL/R `:-` — deletes the element with the given key.
  Status EraseByKey(const Tuple& key);

  /// Deletes the element a ref points to (generation-checked).
  Status EraseByRef(const Ref& ref);

  /// @rel[keyval]: the reference to the element with key `key`.
  Result<Ref> RefByKey(const Tuple& key) const;

  /// rel[keyval]: the element with key `key`.
  Result<const Tuple*> SelectByKey(const Tuple& key) const;

  /// r@ — dereference. Fails with NotFound on dangling refs (deleted or
  /// reused slot) and InvalidArgument on refs of other relations.
  Result<const Tuple*> Deref(const Ref& ref) const;

  /// True if `ref` currently names a live element of this relation.
  bool IsLive(const Ref& ref) const;

  /// One-element-at-a-time scan (paper §4.1's "reading the relation").
  /// The visitor receives each live element and its ref; returning false
  /// stops the scan early.
  void Scan(const std::function<bool(const Ref&, const Tuple&)>& visit) const;

  /// All live refs in slot order.
  std::vector<Ref> AllRefs() const;

  /// Removes every element.
  void Clear();

  std::string DebugString(size_t max_elements = 16) const;

 private:
  struct Slot {
    Tuple tuple;
    uint32_t generation = 0;
    bool live = false;
  };

  RelationId id_;
  std::string name_;
  Schema schema_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<Tuple, uint32_t, TupleHash> key_to_slot_;
  size_t live_count_ = 0;
  uint64_t mod_count_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_STORAGE_RELATION_H_
