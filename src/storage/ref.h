// Ref: the paper's "reference to a selected variable" (@rel[keyval]) — a
// generalisation of the TID. A Ref names one element of one relation.
//
// Refs carry a generation tag so that a reference left dangling by a
// deletion is *detected* on dereference instead of silently resolving to an
// unrelated element (the slot may have been reused).

#ifndef PASCALR_STORAGE_REF_H_
#define PASCALR_STORAGE_REF_H_

#include <cstdint>
#include <string>

#include "base/str_util.h"

namespace pascalr {

/// Identifies a relation within a Database catalog.
using RelationId = uint32_t;

struct Ref {
  RelationId relation = 0;
  uint32_t slot = 0;
  uint32_t generation = 0;

  bool operator==(const Ref& o) const {
    return relation == o.relation && slot == o.slot &&
           generation == o.generation;
  }
  bool operator!=(const Ref& o) const { return !(*this == o); }
  /// Ordering is (relation, slot); generation never differs between two
  /// live refs to the same slot.
  bool operator<(const Ref& o) const {
    if (relation != o.relation) return relation < o.relation;
    return slot < o.slot;
  }

  uint64_t Hash() const {
    uint64_t h = HashCombine(relation, slot);
    return HashCombine(h, generation);
  }

  std::string ToString() const {
    return StrFormat("@%u[%u]", relation, slot);
  }
};

struct RefHash {
  uint64_t operator()(const Ref& r) const { return r.Hash(); }
};

}  // namespace pascalr

#endif  // PASCALR_STORAGE_REF_H_
