// Queryable system relations: the engine's own telemetry exposed through
// its own query language, PASCAL/R's "statistics drive strategy choice"
// discipline turned on the engine itself.
//
//   sys$statements  one row per normalized statement fingerprint — calls,
//                   latency quantiles, rows, the full ExecStats counter
//                   sums, plan-cache verdicts, worst per-operator q-error
//   sys$metrics     the server-wide MetricsRegistry plus the concurrency
//                   and shared-plan-cache counters, one row per metric
//   sys$relations   the user catalog: cardinality, mod_count, arity,
//                   statistics freshness, permanent-index count
//   sys$plan_cache  the shared prepared-plan cache, one row per entry
//   sys$sessions    live sessions with per-session query/write tallies
//
// Mechanism: these are real catalog relations, lazily created and
// re-materialized by RefreshSystemViews *before* a referencing statement
// captures its read snapshot. The refresh runs as an ordinary write
// statement — serialised on the database write mutex, published
// atomically — so under concurrent serving MVCC gives every scan a
// snapshot-consistent view for free: all sys$ scans inside one query see
// one coherent materialization, and concurrent writers never expose a
// half-refreshed row set. Statement entry points (Session / Prepared-
// Query) detect sys$ references textually in the normalized source and
// pin the views for the statement's scope so nested entry points do not
// re-materialize.
//
// The views get trivial catalog statistics (cardinality + per-column
// distinct counts) seeded WITHOUT bumping the stats epoch — the planner
// costs sys$ scans like any analyzed relation, while cached plans for
// ordinary queries stay valid across refreshes.

#ifndef PASCALR_OBS_SYSTEM_RELATIONS_H_
#define PASCALR_OBS_SYSTEM_RELATIONS_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace pascalr {

class Database;

namespace sysrel {
inline constexpr char kPrefix[] = "sys$";
inline constexpr char kStatements[] = "sys$statements";
inline constexpr char kMetrics[] = "sys$metrics";
inline constexpr char kRelations[] = "sys$relations";
inline constexpr char kPlanCache[] = "sys$plan_cache";
inline constexpr char kSessions[] = "sys$sessions";
}  // namespace sysrel

/// True for names in the reserved "sys$" namespace.
bool IsSystemRelationName(std::string_view name);

/// The known system-relation names referenced by `text` (an identifier
/// scan over source or normalized-source text), deduplicated. Unknown
/// sys$ identifiers are ignored — the binder reports those as missing
/// relations like any other typo.
std::vector<std::string> SystemRelationNamesIn(std::string_view text);

/// Statement-scope pin: while one is alive on this thread, Refresh calls
/// are suppressed — the outermost entry point materialized already and
/// nested Prepare/Execute must reuse that state (under serving their
/// shared snapshot could not see a re-refresh anyway).
class ScopedSystemViewPin {
 public:
  ScopedSystemViewPin();
  ~ScopedSystemViewPin();
  ScopedSystemViewPin(const ScopedSystemViewPin&) = delete;
  ScopedSystemViewPin& operator=(const ScopedSystemViewPin&) = delete;
};

/// True while any ScopedSystemViewPin is alive on this thread.
bool SystemViewsPinned();

/// Materializes the named system views as one atomic write statement and
/// quietly refreshes their trivial statistics. Call before capturing the
/// statement's read snapshot.
Status RefreshSystemViews(Database* db, const std::vector<std::string>& names);

/// Entry-point helper: scans `text` for system-relation references and
/// refreshes them unless this thread pinned the views already or is
/// inside an ambient snapshot (which could not observe the refresh).
Status RefreshSystemViewsForSource(Database* db, std::string_view text);

}  // namespace pascalr

#endif  // PASCALR_OBS_SYSTEM_RELATIONS_H_
