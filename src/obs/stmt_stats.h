// Server-wide statement statistics, session registry, and the slow-query
// flight recorder — the pg_stat_statements analogue for this engine.
//
// One StmtStatsStore lives on the Database and every session folds into
// it: each completed Execute/Query (and each EXPLAIN ANALYZE run)
// contributes one observation keyed by the statement's normalized
// fingerprint (FormatSelection of the prepared template — parameter
// markers included, values excluded, so all bindings of one template
// share a row). An observation carries the end-to-end latency, rows
// returned, the run's full ExecStats, whether the plan cache hit, and —
// when the run was profiled — the worst per-operator q-error of the
// profile tree.
//
// The fold happens once per statement, after the cursor closes (or after
// Execute's drain) — never per Next — so the always-on collection stays
// off the row hot path and tracing-off drains remain counter-bit-
// identical to an uninstrumented build.
//
// SlowQueryLog is the flight recorder: a bounded ring of the most recent
// above-threshold statements (source, latency, plan summary, counters),
// armed by `SET SLOWLOG <usec>;` (0 disarms) and read by the shell's
// `.slow`. SessionRegistry tracks the live sessions for sys$sessions.
//
// All three are internally synchronised (one mutex each, folds are
// statement-granular) and safe to share across every serving thread.

#ifndef PASCALR_OBS_STMT_STATS_H_
#define PASCALR_OBS_STMT_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "exec/stats.h"
#include "obs/metrics.h"

namespace pascalr {

/// One statement's accumulated telemetry, as folded so far. Also the
/// materialized row shape of the sys$statements system relation.
struct StmtStatsSnapshot {
  std::string fingerprint;
  uint64_t calls = 0;
  uint64_t rows = 0;
  uint64_t total_us = 0;
  uint64_t mean_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  /// Worst per-operator q-error seen across this statement's profiled
  /// runs, scaled by 100 (the relations are integer-typed); 0 until an
  /// EXPLAIN ANALYZE has run the statement.
  uint64_t max_qerror_x100 = 0;
  /// Summed work counters of every run (peak_intermediate_rows merges by
  /// max, like ExecStats::Merge everywhere else).
  ExecStats counters;
};

/// One observation of one completed statement run.
struct StmtObservation {
  uint64_t latency_us = 0;
  uint64_t rows = 0;
  bool plan_cache_hit = false;
  /// max per-operator q-error of the run's profile tree; <= 0 when the
  /// run was not profiled (the common case — profiling is opt-in).
  double max_qerror = 0.0;
  const ExecStats* stats = nullptr;  ///< required
};

class StmtStatsStore {
 public:
  /// Entries beyond this many distinct fingerprints fold into the
  /// catch-all "<overflow>" row instead of growing without bound.
  static constexpr size_t kMaxEntries = 4096;

  /// Folds one completed run into the fingerprint's row. Thread-safe;
  /// called once per statement, off the row hot path.
  void Fold(const std::string& fingerprint, const StmtObservation& obs);

  /// Consistent copy of every row, sorted by fingerprint.
  std::vector<StmtStatsSnapshot> SnapshotAll() const;

  /// The row for one fingerprint; calls == 0 when never folded.
  StmtStatsSnapshot SnapshotOne(const std::string& fingerprint) const;

  void Clear();
  size_t size() const;

 private:
  struct Entry {
    uint64_t calls = 0;
    uint64_t rows = 0;
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    uint64_t max_qerror_x100 = 0;
    LatencyHistogram latency;
    ExecStats counters;
  };

  static StmtStatsSnapshot Materialize(const std::string& fingerprint,
                                       const Entry& entry);

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

/// One recorded slow query.
struct SlowQueryRecord {
  uint64_t seq = 0;  ///< monotonically increasing admission number
  std::string source;
  std::string plan_summary;  ///< one line: level/pipeline/cache verdicts
  uint64_t latency_us = 0;
  uint64_t rows = 0;
  uint64_t total_work = 0;  ///< ExecStats::TotalWork of the run
};

/// Bounded ring buffer of recent above-threshold statements. The
/// threshold is an atomic read on the record path, so a disarmed log
/// (threshold 0, the default) costs one relaxed load per statement.
class SlowQueryLog {
 public:
  static constexpr size_t kCapacity = 128;

  void set_threshold_us(uint64_t t) {
    threshold_us_.store(t, std::memory_order_relaxed);
  }
  uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  /// True when armed and `latency_us` crosses the threshold — callers
  /// gate on this before building a record.
  bool ShouldRecord(uint64_t latency_us) const {
    const uint64_t t = threshold_us();
    return t > 0 && latency_us >= t;
  }

  void Record(SlowQueryRecord record);
  std::vector<SlowQueryRecord> SnapshotAll() const;
  /// Total admissions, including records the ring has since evicted.
  uint64_t recorded() const;
  void Clear();

  /// Human-readable dump (newest first) for the shell's `.slow`.
  std::string Dump() const;

 private:
  std::atomic<uint64_t> threshold_us_{0};
  mutable Mutex mu_;
  std::deque<SlowQueryRecord> ring_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
};

/// Live sessions of one Database, for sys$sessions: Session registers in
/// its constructor and unregisters in its destructor, and bumps its row
/// as it executes.
class SessionRegistry {
 public:
  struct Row {
    uint64_t id = 0;
    uint64_t queries = 0;  ///< read statements / query executions
    uint64_t writes = 0;   ///< committed write statements
  };

  /// Returns the new session's id (ids start at 1 and are never reused).
  uint64_t Register();
  void Unregister(uint64_t id);
  void RecordQuery(uint64_t id);
  void RecordWrite(uint64_t id);

  /// Rows for every live session, sorted by id.
  std::vector<Row> SnapshotAll() const;
  size_t size() const;

 private:
  mutable Mutex mu_;
  uint64_t next_id_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, Row> rows_ GUARDED_BY(mu_);
};

}  // namespace pascalr

#endif  // PASCALR_OBS_STMT_STATS_H_
