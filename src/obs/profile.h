// Per-operator pipeline profiling: the run-time half of EXPLAIN ANALYZE.
//
// When profiling is requested, the pipeline compiler registers one OpNode
// per operator it emits (mirroring the EXPLAIN iterator tree, estimated
// cardinality attached) and wraps the operator in a ProfiledIter that
// counts open/next calls, rows out, and cumulative inclusive time. When
// profiling is off the wrappers are simply never inserted — the iterator
// tree is bit-identical to the unprofiled build, so the off path carries
// literally zero instructions of overhead (asserted by the observability
// tests via counter identity).
//
// Timing is inclusive per wrapper (a Next on a join times the child pulls
// it performs); Render() subtracts children's inclusive time to report
// self-time, and prints the estimated-vs-actual q-error
// max(est/actual, actual/est) per operator — the misestimation signal
// the planner gauntlet consumes.

#ifndef PASCALR_OBS_PROFILE_H_
#define PASCALR_OBS_PROFILE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "pipeline/iterators.h"

namespace pascalr {

struct OpProfile {
  uint64_t open_calls = 0;  ///< first-Next preparations observed
  uint64_t next_calls = 0;  ///< row-at-a-time pulls
  uint64_t batch_calls = 0; ///< NextBatch pulls (batched drains)
  uint64_t rows_out = 0;    ///< rows produced over both contracts
  uint64_t time_ns = 0;     ///< inclusive (children included)
};

/// One operator of the profiled tree. `est_rows` < 0 means the planner
/// attached no estimate for this operator (leaves without cost-model
/// cardinalities, glue operators like Concat).
struct OpNode {
  std::string label;
  double est_rows = -1.0;
  std::vector<int> children;
  OpProfile prof;
};

/// The profile for one compiled pipeline: an operator tree populated by
/// the compiler, counters populated by the ProfiledIter wrappers as the
/// query drains. Node ids are stable across the pipeline's lifetime.
class PipelineProfile {
 public:
  /// Registers an operator; children must already be registered.
  int Add(std::string label, double est_rows, std::vector<int> children);
  /// Marks `id` as the tree root (the last compiled sink).
  void SetRoot(int id) { root_ = id; }

  int root() const { return root_; }
  size_t size() const { return nodes_.size(); }
  const OpNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  OpProfile* prof(int id) { return &nodes_[static_cast<size_t>(id)].prof; }

  /// The EXPLAIN ANALYZE operator table: indented tree with actual rows,
  /// next calls, self-time, and est-vs-actual q-error per operator.
  std::string Render() const;

  /// Counter summaries for the trace layer ("pipeline.rows_out", ...).
  std::vector<std::pair<std::string, uint64_t>> Totals() const;

 private:
  void RenderNode(int id, int depth, std::string* out) const;
  uint64_t ChildTimeNs(int id) const;

  /// Deque, not vector: Add must never move existing nodes — live
  /// ProfiledIter wrappers hold pointers into their OpProfile slots.
  std::deque<OpNode> nodes_;
  int root_ = -1;
};

/// Estimated-vs-actual q-error: max(est/actual, actual/est), clamped to
/// >= 1; by convention 0-vs-0 is a perfect 1. Exposed for tests.
double QError(double est, uint64_t actual);

/// Worst per-operator q-error of a profiled run — the scalar the
/// statement-statistics store harvests per EXPLAIN ANALYZE. Operators
/// without an estimate (est_rows < 0) are skipped; 0 when no operator
/// carries one.
double MaxQError(const PipelineProfile& profile);

/// Transparent counting/timing decorator. Conforms to the one-method
/// RefIterator protocol: the wrapped operator's first Next doubles as its
/// open, so open_calls counts first-Next preparations.
class ProfiledIter : public RefIterator {
 public:
  ProfiledIter(RefIteratorPtr inner, OpProfile* prof)
      : inner_(std::move(inner)), prof_(prof) {}
  Result<bool> Next(RefRow* out) override;
  /// Forwards to the inner operator's NextBatch — NOT the row bridge —
  /// so a profiled run takes exactly the execution path an unprofiled
  /// one does. Times the whole batch pull once (inclusive); Render's
  /// child-time subtraction then attributes self-time per batch, never
  /// double-counting the child pulls performed inside it.
  Result<bool> NextBatch(Chunk* out) override;

 private:
  RefIteratorPtr inner_;
  OpProfile* prof_;
  bool opened_ = false;
};

}  // namespace pascalr

#endif  // PASCALR_OBS_PROFILE_H_
