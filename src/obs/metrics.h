// Engine metrics surface: named counters, gauges, and latency histograms
// with percentile readout. One MetricsRegistry lives on each Session and
// is fed by the query path (query latency, plan-cache hits/misses,
// replans, lazy-build events); the `METRICS;` statement and the shell's
// `.metrics` dump it, and bench_util exports the latency percentiles into
// BENCH_*.json.
//
// Thread-safety: every instrument is a fixed set of relaxed atomics, and
// the registry guards its name maps with a mutex — only map *mutation*
// takes the lock; the references handed out stay valid forever because
// std::map nodes never move. Concurrent Record/Inc calls never corrupt a
// metric (each field is individually atomic); a Dump racing a writer may
// observe a histogram whose count and sum are from adjacent instants,
// which is the usual monitoring-surface contract. Single-threaded use is
// bit-identical to the pre-atomic implementation.

#ifndef PASCALR_OBS_METRICS_H_
#define PASCALR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace pascalr {

class Counter {
 public:
  // Relaxed throughout: a metric value is a pure tally — no reader infers
  // the state of other memory from it, so no ordering is needed.
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  // Relaxed: last-writer-wins monitoring value, read in isolation.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram: 4 sub-buckets per octave (~19% bucket width),
/// values up to 2^63. Percentile() returns the upper bound of the bucket
/// containing the p-quantile — an overestimate by at most one bucket
/// width, which is the right bias for latency reporting.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 4;  ///< per octave
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    // min_ starts at UINT64_MAX so concurrent Records can race it down
    // with a plain CAS loop; the sentinel never leaks out.
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Mean of the recorded values (0 when empty).
  uint64_t Mean() const {
    uint64_t n = count();
    return n == 0 ? 0 : sum() / n;
  }
  /// Upper bound of the bucket holding the p-quantile, p in (0, 1].
  uint64_t Percentile(double p) const;

  /// "count=12 mean=34 p50=30 p95=60 p99=61 max=58" — the one-line form
  /// used by MetricsRegistry::Dump.
  std::string Summary() const;

 private:
  static size_t BucketOf(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Named metrics, created on first touch. Names are dotted paths
/// ("plan_cache.hits", "query.latency_us"); Dump() renders them sorted so
/// the output is stable. Lookup/creation is mutex-guarded; the returned
/// references are stable (map nodes never move) so hot paths may cache
/// them and update lock-free through the instruments' atomics.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    MutexLock lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    MutexLock lock(mu_);
    return gauges_[name];
  }
  LatencyHistogram& histogram(const std::string& name) {
    MutexLock lock(mu_);
    return histograms_[name];
  }

  /// Read-only lookup; nullptr when the metric was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  /// All metrics, one per line, sorted by name within each kind.
  std::string Dump() const;

  /// Point-in-time copies for exporters (sys$metrics, the Prometheus
  /// text surface). Same per-instrument race contract as Dump: each
  /// value is coherent, adjacent values may be from adjacent instants.
  struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t mean = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
  };
  std::map<std::string, uint64_t> CountersSnapshot() const;
  std::map<std::string, int64_t> GaugesSnapshot() const;
  std::map<std::string, HistogramSnapshot> HistogramsSnapshot() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mu_);
  std::map<std::string, LatencyHistogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace pascalr

#endif  // PASCALR_OBS_METRICS_H_
