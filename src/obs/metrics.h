// Engine metrics surface: named counters, gauges, and latency histograms
// with percentile readout. One MetricsRegistry lives on each Session and
// is fed by the query path (query latency, plan-cache hits/misses,
// replans, lazy-build events); the `METRICS;` statement and the shell's
// `.metrics` dump it, and bench_util exports the latency percentiles into
// BENCH_*.json.
//
// Everything here is deliberately boring: plain uint64 slots behind a
// sorted name map, no locking (the engine is single-threaded by design,
// like base/counters.h), and a log-bucketed histogram whose percentiles
// are deterministic functions of the recorded values — the dump is
// byte-stable across identical runs except for the latency numbers
// themselves.

#ifndef PASCALR_OBS_METRICS_H_
#define PASCALR_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

namespace pascalr {

class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Log-bucketed histogram: 4 sub-buckets per octave (~19% bucket width),
/// values up to 2^63. Percentile() returns the upper bound of the bucket
/// containing the p-quantile — an overestimate by at most one bucket
/// width, which is the right bias for latency reporting.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 4;  ///< per octave
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Mean of the recorded values (0 when empty).
  uint64_t Mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  /// Upper bound of the bucket holding the p-quantile, p in (0, 1].
  uint64_t Percentile(double p) const;

  /// "count=12 mean=34 p50=30 p95=60 p99=61 max=58" — the one-line form
  /// used by MetricsRegistry::Dump.
  std::string Summary() const;

 private:
  static size_t BucketOf(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Named metrics, created on first touch. Names are dotted paths
/// ("plan_cache.hits", "query.latency_us"); Dump() renders them sorted so
/// the output is stable.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Read-only lookup; nullptr when the metric was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  /// All metrics, one per line, sorted by name within each kind.
  std::string Dump() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace pascalr

#endif  // PASCALR_OBS_METRICS_H_
