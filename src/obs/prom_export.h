// Prometheus text-format exporter over the engine's metrics surface:
// renders a MetricsRegistry (counters, gauges, histogram summaries with
// quantile labels) and, optionally, the server-wide statement-statistics
// aggregates into the exposition format a Prometheus scrape endpoint (or
// the shell's `.metrics prom`) can serve directly.
//
// Metric names are prefixed "pascalr_" and dotted registry names are
// flattened to underscores ("plan_cache.hits" → pascalr_plan_cache_hits).
// Per-fingerprint series are deliberately NOT exported — statement text
// is unbounded-cardinality label data; the per-statement surface is the
// sys$statements system relation instead.

#ifndef PASCALR_OBS_PROM_EXPORT_H_
#define PASCALR_OBS_PROM_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/stmt_stats.h"

namespace pascalr {

/// Renders `metrics` (and, when non-null, `stmt_stats` aggregates) in
/// the Prometheus text exposition format.
std::string ExportPrometheus(const MetricsRegistry& metrics,
                             const StmtStatsStore* stmt_stats = nullptr,
                             const SlowQueryLog* slow_log = nullptr);

}  // namespace pascalr

#endif  // PASCALR_OBS_PROM_EXPORT_H_
