#include "obs/stmt_stats.h"

#include <algorithm>

#include "base/str_util.h"

namespace pascalr {

namespace {

constexpr char kOverflowKey[] = "<overflow>";

}  // namespace

void StmtStatsStore::Fold(const std::string& fingerprint,
                          const StmtObservation& obs) {
  MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    if (entries_.size() >= kMaxEntries) {
      it = entries_.try_emplace(kOverflowKey).first;
    } else {
      it = entries_.try_emplace(fingerprint).first;
    }
  }
  Entry& e = it->second;
  ++e.calls;
  e.rows += obs.rows;
  if (obs.plan_cache_hit) {
    ++e.plan_hits;
  } else {
    ++e.plan_misses;
  }
  if (obs.max_qerror > 0.0) {
    const uint64_t scaled = static_cast<uint64_t>(obs.max_qerror * 100.0);
    e.max_qerror_x100 = std::max(e.max_qerror_x100, scaled);
  }
  e.latency.Record(obs.latency_us);
  if (obs.stats != nullptr) e.counters.Merge(*obs.stats);
}

StmtStatsSnapshot StmtStatsStore::Materialize(const std::string& fingerprint,
                                              const Entry& entry) {
  StmtStatsSnapshot out;
  out.fingerprint = fingerprint;
  out.calls = entry.calls;
  out.rows = entry.rows;
  out.total_us = entry.latency.sum();
  out.mean_us = entry.latency.Mean();
  out.p50_us = entry.latency.Percentile(0.50);
  out.p95_us = entry.latency.Percentile(0.95);
  out.p99_us = entry.latency.Percentile(0.99);
  out.max_us = entry.latency.max();
  out.plan_hits = entry.plan_hits;
  out.plan_misses = entry.plan_misses;
  out.max_qerror_x100 = entry.max_qerror_x100;
  out.counters = entry.counters;
  return out;
}

std::vector<StmtStatsSnapshot> StmtStatsStore::SnapshotAll() const {
  MutexLock lock(mu_);
  std::vector<StmtStatsSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [fingerprint, entry] : entries_) {
    out.push_back(Materialize(fingerprint, entry));
  }
  return out;  // map iteration order == sorted by fingerprint
}

StmtStatsSnapshot StmtStatsStore::SnapshotOne(
    const std::string& fingerprint) const {
  MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    StmtStatsSnapshot empty;
    empty.fingerprint = fingerprint;
    return empty;
  }
  return Materialize(fingerprint, it->second);
}

void StmtStatsStore::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

size_t StmtStatsStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void SlowQueryLog::Record(SlowQueryRecord record) {
  MutexLock lock(mu_);
  record.seq = ++next_seq_;
  ring_.push_back(std::move(record));
  if (ring_.size() > kCapacity) ring_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::SnapshotAll() const {
  MutexLock lock(mu_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

uint64_t SlowQueryLog::recorded() const {
  MutexLock lock(mu_);
  return next_seq_;
}

void SlowQueryLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

std::string SlowQueryLog::Dump() const {
  std::vector<SlowQueryRecord> records = SnapshotAll();
  const uint64_t threshold = threshold_us();
  std::string out =
      threshold == 0
          ? std::string("slow-query log disarmed (SET SLOWLOG <usec>;)\n")
          : StrFormat("slow-query log: threshold=%lluus, %zu record(s)\n",
                      static_cast<unsigned long long>(threshold),
                      records.size());
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    out += StrFormat("#%llu  %lluus  %llu row(s)  work=%llu  [%s]\n    %s\n",
                     static_cast<unsigned long long>(it->seq),
                     static_cast<unsigned long long>(it->latency_us),
                     static_cast<unsigned long long>(it->rows),
                     static_cast<unsigned long long>(it->total_work),
                     it->plan_summary.c_str(), it->source.c_str());
  }
  return out;
}

uint64_t SessionRegistry::Register() {
  MutexLock lock(mu_);
  const uint64_t id = ++next_id_;
  Row& row = rows_[id];
  row.id = id;
  return id;
}

void SessionRegistry::Unregister(uint64_t id) {
  MutexLock lock(mu_);
  rows_.erase(id);
}

void SessionRegistry::RecordQuery(uint64_t id) {
  MutexLock lock(mu_);
  auto it = rows_.find(id);
  if (it != rows_.end()) ++it->second.queries;
}

void SessionRegistry::RecordWrite(uint64_t id) {
  MutexLock lock(mu_);
  auto it = rows_.find(id);
  if (it != rows_.end()) ++it->second.writes;
}

std::vector<SessionRegistry::Row> SessionRegistry::SnapshotAll() const {
  MutexLock lock(mu_);
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) {
    (void)id;
    out.push_back(row);
  }
  return out;
}

size_t SessionRegistry::size() const {
  MutexLock lock(mu_);
  return rows_.size();
}

}  // namespace pascalr
