#include "obs/system_relations.h"

#include <algorithm>
#include <cctype>

#include "catalog/database.h"
#include "catalog/relation_stats.h"
#include "concurrency/snapshot.h"
#include "obs/stmt_stats.h"
#include "storage/relation.h"
#include "value/schema.h"
#include "value/type.h"
#include "value/value.h"

namespace pascalr {

namespace {

thread_local int g_pin_depth = 0;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

Value V(uint64_t v) { return Value::MakeInt(static_cast<int64_t>(v)); }
Value V(const std::string& s) { return Value::MakeString(s); }

Component IntCol(const char* name) { return Component{name, Type::Int()}; }
Component StrCol(const char* name) { return Component{name, Type::String()}; }
Component BoolCol(const char* name) { return Component{name, Type::Bool()}; }

// ---- sys$statements ---------------------------------------------------
// The linter's execstats-sysstatements rule parses this schema block:
// every ExecStats counter field must appear as a column, so a counter
// added to exec/stats.h cannot silently stay invisible to the telemetry
// surface.
Result<Schema> StatementsSchema() {
  return Schema::Make(
      {StrCol("fingerprint"), IntCol("calls"), IntCol("rows"),
       IntCol("total_us"), IntCol("mean_us"), IntCol("p50_us"),
       IntCol("p95_us"), IntCol("p99_us"), IntCol("max_us"),
       IntCol("plan_hits"), IntCol("plan_misses"), IntCol("qerror_max_x100"),
       IntCol("relations_read"), IntCol("elements_scanned"),
       IntCol("index_probes"), IntCol("single_list_refs"),
       IntCol("indirect_join_refs"), IntCol("combination_rows"),
       IntCol("division_input_rows"), IntCol("quantifier_probes"),
       IntCol("comparisons"), IntCol("dereferences"), IntCol("replans"),
       IntCol("permanent_index_hits"), IntCol("structures_built"),
       IntCol("structure_elements_built"), IntCol("batches_emitted"),
       IntCol("morsels_dispatched"), IntCol("peak_intermediate_rows"),
       IntCol("total_work")},
      {"fingerprint"});
}

Status FillStatements(Database* db, Relation* rel) {
  for (const StmtStatsSnapshot& s : db->stmt_stats().SnapshotAll()) {
    Tuple t;
    t.Append(V(s.fingerprint));
    t.Append(V(s.calls));
    t.Append(V(s.rows));
    t.Append(V(s.total_us));
    t.Append(V(s.mean_us));
    t.Append(V(s.p50_us));
    t.Append(V(s.p95_us));
    t.Append(V(s.p99_us));
    t.Append(V(s.max_us));
    t.Append(V(s.plan_hits));
    t.Append(V(s.plan_misses));
    t.Append(V(s.max_qerror_x100));
    t.Append(V(s.counters.relations_read));
    t.Append(V(s.counters.elements_scanned));
    t.Append(V(s.counters.index_probes));
    t.Append(V(s.counters.single_list_refs));
    t.Append(V(s.counters.indirect_join_refs));
    t.Append(V(s.counters.combination_rows));
    t.Append(V(s.counters.division_input_rows));
    t.Append(V(s.counters.quantifier_probes));
    t.Append(V(s.counters.comparisons));
    t.Append(V(s.counters.dereferences));
    t.Append(V(s.counters.replans));
    t.Append(V(s.counters.permanent_index_hits));
    t.Append(V(s.counters.structures_built));
    t.Append(V(s.counters.structure_elements_built));
    t.Append(V(s.counters.batches_emitted));
    t.Append(V(s.counters.morsels_dispatched));
    t.Append(V(s.counters.peak_intermediate_rows));
    t.Append(V(s.counters.TotalWork()));
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(t)));
    (void)ignored;
  }
  return Status::OK();
}

// ---- sys$metrics ------------------------------------------------------
Result<Schema> MetricsSchema() {
  return Schema::Make(
      {StrCol("name"), StrCol("kind"), IntCol("value"), IntCol("count"),
       IntCol("mean"), IntCol("p50"), IntCol("p95"), IntCol("p99"),
       IntCol("max")},
      {"name", "kind"});
}

Status InsertMetricRow(Relation* rel, const std::string& name,
                       const char* kind, uint64_t value, uint64_t count = 0,
                       uint64_t mean = 0, uint64_t p50 = 0, uint64_t p95 = 0,
                       uint64_t p99 = 0, uint64_t max = 0) {
  Tuple t;
  t.Append(V(name));
  t.Append(Value::MakeString(kind));
  t.Append(V(value));
  t.Append(V(count));
  t.Append(V(mean));
  t.Append(V(p50));
  t.Append(V(p95));
  t.Append(V(p99));
  t.Append(V(max));
  PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(t)));
  (void)ignored;
  return Status::OK();
}

Status FillMetrics(Database* db, Relation* rel) {
  const MetricsRegistry& m = db->server_metrics();
  for (const auto& [name, value] : m.CountersSnapshot()) {
    PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, name, "counter", value));
  }
  for (const auto& [name, value] : m.GaugesSnapshot()) {
    PASCALR_RETURN_IF_ERROR(
        InsertMetricRow(rel, name, "gauge", static_cast<uint64_t>(value)));
  }
  for (const auto& [name, h] : m.HistogramsSnapshot()) {
    PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, name, "histogram", h.sum,
                                            h.count, h.mean, h.p50, h.p95,
                                            h.p99, h.max));
  }
  // The concurrency layer's process counters ride along so one relation
  // answers "what is this server doing" without a second surface.
  const ConcurrencyCounters::View c = db->ConcurrencyCountersView();
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(
      rel, "concurrency.snapshots_taken", "counter", c.snapshots_taken));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "concurrency.delta_merges",
                                          "counter", c.delta_merges));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "concurrency.compactions",
                                          "counter", c.compactions));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "concurrency.versions_retired",
                                          "counter", c.versions_retired));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "concurrency.write_statements",
                                          "counter", c.write_statements));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "plan_cache.shared_hits",
                                          "counter", c.shared_plan_hits));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "plan_cache.shared_misses",
                                          "counter", c.shared_plan_misses));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "slow_log.recorded", "counter",
                                          db->slow_log().recorded()));
  PASCALR_RETURN_IF_ERROR(InsertMetricRow(rel, "slow_log.threshold_us",
                                          "gauge",
                                          db->slow_log().threshold_us()));
  return Status::OK();
}

// ---- sys$relations ----------------------------------------------------
Result<Schema> RelationsSchema() {
  return Schema::Make(
      {StrCol("name"), IntCol("id"), IntCol("arity"), IntCol("cardinality"),
       IntCol("mod_count"), BoolCol("has_fresh_stats"), IntCol("indexes")},
      {"name"});
}

Status FillRelations(Database* db, Relation* rel) {
  std::vector<Database::IndexDescription> indexes = db->ListIndexes();
  for (const std::string& name : db->RelationNames()) {
    // The user catalog only: listing the views themselves would report
    // mid-refresh states (this very relation is being rebuilt right now).
    if (IsSystemRelationName(name)) continue;
    Relation* r = db->FindRelation(name);
    if (r == nullptr) continue;
    size_t index_count = 0;
    for (const Database::IndexDescription& idx : indexes) {
      if (idx.relation == name) ++index_count;
    }
    Tuple t;
    t.Append(V(name));
    t.Append(V(static_cast<uint64_t>(r->id())));
    t.Append(V(r->schema().num_components()));
    t.Append(V(r->cardinality()));
    t.Append(V(r->mod_count()));
    t.Append(Value::MakeBool(db->FindFreshStats(name) != nullptr));
    t.Append(V(index_count));
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(t)));
    (void)ignored;
  }
  return Status::OK();
}

// ---- sys$plan_cache ---------------------------------------------------
Result<Schema> PlanCacheSchema() {
  return Schema::Make({StrCol("cache_key"), IntCol("stats_epoch"),
                       IntCol("relations"), IntCol("param_probes")},
                      {"cache_key"});
}

Status FillPlanCache(Database* db, Relation* rel) {
  for (const SharedPlanCache::Description& d : db->shared_plans().Describe()) {
    Tuple t;
    t.Append(V(d.key));
    t.Append(V(d.stats_epoch));
    t.Append(V(d.relations));
    t.Append(V(d.param_probes));
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(t)));
    (void)ignored;
  }
  return Status::OK();
}

// ---- sys$sessions -----------------------------------------------------
Result<Schema> SessionsSchema() {
  return Schema::Make({IntCol("id"), IntCol("queries"), IntCol("writes")},
                      {"id"});
}

Status FillSessions(Database* db, Relation* rel) {
  for (const SessionRegistry::Row& row : db->session_registry().SnapshotAll()) {
    Tuple t;
    t.Append(V(row.id));
    t.Append(V(row.queries));
    t.Append(V(row.writes));
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(t)));
    (void)ignored;
  }
  return Status::OK();
}

struct ViewDef {
  const char* name;
  Result<Schema> (*schema)();
  Status (*fill)(Database* db, Relation* rel);
};

constexpr ViewDef kViews[] = {
    {sysrel::kStatements, StatementsSchema, FillStatements},
    {sysrel::kMetrics, MetricsSchema, FillMetrics},
    {sysrel::kRelations, RelationsSchema, FillRelations},
    {sysrel::kPlanCache, PlanCacheSchema, FillPlanCache},
    {sysrel::kSessions, SessionsSchema, FillSessions},
};

const ViewDef* FindView(std::string_view name) {
  for (const ViewDef& view : kViews) {
    if (name == view.name) return &view;
  }
  return nullptr;
}

Status RefreshOne(Database* db, const ViewDef& view) {
  Relation* rel = db->FindRelation(view.name);
  if (rel == nullptr) {
    PASCALR_ASSIGN_OR_RETURN(Schema schema, view.schema());
    PASCALR_ASSIGN_OR_RETURN(rel,
                             db->CreateRelation(view.name, std::move(schema)));
  }
  rel->Clear();
  return view.fill(db, rel);
}

/// Trivial statistics — cardinality plus per-column distinct counts — so
/// the cost model prices sys$ scans like any analyzed relation. Seeded
/// quietly (no stats-epoch bump): ordinary queries' cached plans must
/// survive telemetry refreshes, and plans over the views revalidate on
/// mod_count anyway (it changes every refresh).
void SeedTrivialStats(Database* db, const std::string& name) {
  Relation* rel = db->FindRelation(name);
  if (rel == nullptr) return;
  const Schema& schema = rel->schema();
  RelationStats stats;
  stats.relation = name;
  stats.cardinality = rel->cardinality();
  stats.columns.resize(schema.num_components());
  for (size_t i = 0; i < schema.num_components(); ++i) {
    stats.columns[i].name = schema.component(i).name;
    stats.columns[i].distinct = std::max<uint64_t>(1, stats.cardinality);
  }
  // Best-effort: a failed seed only costs estimate quality.
  (void)db->SeedStatsQuiet(std::move(stats));
}

}  // namespace

bool IsSystemRelationName(std::string_view name) {
  return name.rfind(sysrel::kPrefix, 0) == 0;
}

std::vector<std::string> SystemRelationNamesIn(std::string_view text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = text.find(sysrel::kPrefix, pos)) != std::string_view::npos) {
    if (pos > 0 && IsIdentChar(text[pos - 1])) {
      // Mid-identifier (e.g. "mysys$x") — not a reference.
      ++pos;
      continue;
    }
    size_t end = pos;
    while (end < text.size() && IsIdentChar(text[end])) ++end;
    std::string name(text.substr(pos, end - pos));
    if (FindView(name) != nullptr &&
        std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(std::move(name));
    }
    pos = end;
  }
  return out;
}

ScopedSystemViewPin::ScopedSystemViewPin() { ++g_pin_depth; }
ScopedSystemViewPin::~ScopedSystemViewPin() { --g_pin_depth; }

bool SystemViewsPinned() { return g_pin_depth > 0; }

Status RefreshSystemViews(Database* db,
                          const std::vector<std::string>& names) {
  if (db == nullptr || names.empty()) return Status::OK();
  {
    // One write statement per refresh: serialised against every other
    // writer, published atomically — a snapshot taken after this commit
    // sees all requested views at one consistent instant.
    Database::WriteStatementGuard guard = db->BeginWriteStatement();
    for (const std::string& name : names) {
      const ViewDef* view = FindView(name);
      if (view == nullptr) continue;
      PASCALR_RETURN_IF_ERROR(RefreshOne(db, *view));
    }
    guard.Commit();
  }
  for (const std::string& name : names) SeedTrivialStats(db, name);
  db->MaybeCompact();
  return Status::OK();
}

Status RefreshSystemViewsForSource(Database* db, std::string_view text) {
  if (db == nullptr || SystemViewsPinned()) return Status::OK();
  // An ambient snapshot predates any refresh we could make — the caller
  // up the stack materialized (or deliberately pinned its read point).
  if (CurrentSnapshot() != nullptr) return Status::OK();
  std::vector<std::string> names = SystemRelationNamesIn(text);
  if (names.empty()) return Status::OK();
  return RefreshSystemViews(db, names);
}

}  // namespace pascalr
