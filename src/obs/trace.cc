#include "obs/trace.h"

#include <chrono>

#include "base/str_util.h"

namespace pascalr {

namespace {

thread_local Tracer* g_current_tracer = nullptr;

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendDelta(std::vector<std::pair<std::string, uint64_t>>* out,
                 const char* name, uint64_t base, uint64_t now) {
  if (now > base) out->emplace_back(name, now - base);
}

}  // namespace

std::vector<std::pair<std::string, uint64_t>> ExecStatsDelta(
    const ExecStats& base, const ExecStats& now) {
  std::vector<std::pair<std::string, uint64_t>> out;
  AppendDelta(&out, "relations_read", base.relations_read, now.relations_read);
  AppendDelta(&out, "elements_scanned", base.elements_scanned,
              now.elements_scanned);
  AppendDelta(&out, "index_probes", base.index_probes, now.index_probes);
  AppendDelta(&out, "single_list_refs", base.single_list_refs,
              now.single_list_refs);
  AppendDelta(&out, "indirect_join_refs", base.indirect_join_refs,
              now.indirect_join_refs);
  AppendDelta(&out, "combination_rows", base.combination_rows,
              now.combination_rows);
  AppendDelta(&out, "division_input_rows", base.division_input_rows,
              now.division_input_rows);
  AppendDelta(&out, "quantifier_probes", base.quantifier_probes,
              now.quantifier_probes);
  AppendDelta(&out, "comparisons", base.comparisons, now.comparisons);
  AppendDelta(&out, "dereferences", base.dereferences, now.dereferences);
  AppendDelta(&out, "replans", base.replans, now.replans);
  AppendDelta(&out, "permanent_index_hits", base.permanent_index_hits,
              now.permanent_index_hits);
  AppendDelta(&out, "structures_built", base.structures_built,
              now.structures_built);
  AppendDelta(&out, "structure_elements_built", base.structure_elements_built,
              now.structure_elements_built);
  AppendDelta(&out, "peak_intermediate_rows", base.peak_intermediate_rows,
              now.peak_intermediate_rows);
  return out;
}

std::vector<std::pair<std::string, uint64_t>> CompileCountersDelta(
    const CompileCounters& base, const CompileCounters& now) {
  std::vector<std::pair<std::string, uint64_t>> out;
  AppendDelta(&out, "parses", base.parses, now.parses);
  AppendDelta(&out, "binds", base.binds, now.binds);
  AppendDelta(&out, "standard_forms", base.standard_forms,
              now.standard_forms);
  AppendDelta(&out, "plans", base.plans, now.plans);
  AppendDelta(&out, "plan_searches", base.plan_searches, now.plan_searches);
  AppendDelta(&out, "collection_walks", base.collection_walks,
              now.collection_walks);
  return out;
}

std::string QueryTrace::ToString() const {
  std::string out = StrFormat("trace: %s\n", label.c_str());
  // Spans are in open order with parent-before-child, so depth is
  // recoverable with one left-to-right pass.
  std::vector<int> depth(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent >= 0) depth[i] = depth[spans[i].parent] + 1;
    std::string indent(static_cast<size_t>(depth[i]) * 2, ' ');
    out += StrFormat("%s%s", indent.c_str(), spans[i].name.c_str());
    if (!spans[i].detail.empty()) {
      out += StrFormat(" [%s]", spans[i].detail.c_str());
    }
    out += StrFormat("  %.3f ms",
                     static_cast<double>(spans[i].dur_ns) / 1e6);
    for (const auto& [name, value] : spans[i].counters) {
      out += StrFormat("  %s=%llu", name.c_str(),
                       static_cast<unsigned long long>(value));
    }
    out += "\n";
  }
  return out;
}

Tracer::Tracer() : epoch_ns_(SteadyNowNs()) {}

Tracer* Tracer::Current() { return g_current_tracer; }

uint64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

int Tracer::BeginQuery(const std::string& kind, const std::string& label) {
  if (!stack_.empty()) return OpenSpan(kind, label);
  traces_.push_back(QueryTrace{});
  QueryTrace& trace = traces_.back();
  trace.label = label.empty() ? kind : label;
  TraceSpan root;
  root.name = kind;
  root.detail = label;
  root.parent = -1;
  root.start_ns = NowNs();
  trace.spans.push_back(std::move(root));
  stack_.push_back(0);
  return 0;
}

int Tracer::OpenSpan(const std::string& name, const std::string& detail) {
  if (stack_.empty() || traces_.empty()) return -1;
  QueryTrace& trace = traces_.back();
  TraceSpan span;
  span.name = name;
  span.detail = detail;
  span.parent = stack_.back();
  span.start_ns = NowNs();
  int id = static_cast<int>(trace.spans.size());
  trace.spans.push_back(std::move(span));
  stack_.push_back(id);
  return id;
}

void Tracer::CloseSpan(
    int id, std::vector<std::pair<std::string, uint64_t>> counters) {
  if (id < 0 || traces_.empty()) return;
  QueryTrace& trace = traces_.back();
  if (static_cast<size_t>(id) >= trace.spans.size()) return;
  TraceSpan& span = trace.spans[static_cast<size_t>(id)];
  span.dur_ns = NowNs() - span.start_ns;
  span.counters = std::move(counters);
  // Pop through `id`: guards destruct in strict LIFO order, but be
  // tolerant of a missed close (e.g. an error path) rather than corrupt
  // the stack.
  while (!stack_.empty()) {
    int top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

void Tracer::AddCompleteSpan(
    const std::string& name, const std::string& detail, uint64_t start_ns,
    uint64_t dur_ns, std::vector<std::pair<std::string, uint64_t>> counters) {
  if (traces_.empty()) return;
  QueryTrace& trace = traces_.back();
  TraceSpan span;
  span.name = name;
  span.detail = detail;
  span.parent = stack_.empty() ? 0 : stack_.back();
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  span.counters = std::move(counters);
  trace.spans.push_back(std::move(span));
}

void Tracer::Clear() {
  traces_.clear();
  stack_.clear();
}

ScopedTracerInstall::ScopedTracerInstall(Tracer* tracer)
    : previous_(g_current_tracer) {
  g_current_tracer = tracer;
}

ScopedTracerInstall::~ScopedTracerInstall() { g_current_tracer = previous_; }

TraceSpanGuard::TraceSpanGuard(const char* name, const ExecStats* stats,
                               std::string detail)
    : tracer_(Tracer::Current()), stats_(stats) {
  if (tracer_ == nullptr) return;
  span_ = tracer_->OpenSpan(name, std::move(detail));
  compile_at_open_ = GlobalCompileCounters();
  if (stats_ != nullptr) stats_at_open_ = *stats_;
}

TraceSpanGuard::~TraceSpanGuard() {
  if (tracer_ == nullptr || span_ < 0) return;
  auto counters = CompileCountersDelta(compile_at_open_,
                                       GlobalCompileCounters());
  if (stats_ != nullptr) {
    auto exec = ExecStatsDelta(stats_at_open_, *stats_);
    counters.insert(counters.end(), exec.begin(), exec.end());
  }
  tracer_->CloseSpan(span_, std::move(counters));
}

QueryTraceGuard::QueryTraceGuard(const char* kind, const std::string& label,
                                 const ExecStats* stats)
    : tracer_(Tracer::Current()), stats_(stats) {
  if (tracer_ == nullptr) return;
  span_ = tracer_->BeginQuery(kind, label);
  compile_at_open_ = GlobalCompileCounters();
  if (stats_ != nullptr) stats_at_open_ = *stats_;
}

QueryTraceGuard::~QueryTraceGuard() {
  if (tracer_ == nullptr || span_ < 0) return;
  auto counters = CompileCountersDelta(compile_at_open_,
                                       GlobalCompileCounters());
  if (stats_ != nullptr) {
    auto exec = ExecStatsDelta(stats_at_open_, *stats_);
    counters.insert(counters.end(), exec.begin(), exec.end());
  }
  tracer_->CloseSpan(span_, std::move(counters));
}

}  // namespace pascalr
