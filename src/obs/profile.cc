#include "obs/profile.h"

#include <chrono>

#include "base/str_util.h"

namespace pascalr {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

double QError(double est, uint64_t actual) {
  double act = static_cast<double>(actual);
  if (est <= 0.0 && actual == 0) return 1.0;
  // A zero on one side only is an unbounded miss; report the other side's
  // magnitude (+1 to stay finite and >= 1) rather than infinity.
  if (est <= 0.0) return act + 1.0;
  if (actual == 0) return est + 1.0;
  double q = est > act ? est / act : act / est;
  return q < 1.0 ? 1.0 : q;
}

double MaxQError(const PipelineProfile& profile) {
  double worst = 0.0;
  for (size_t i = 0; i < profile.size(); ++i) {
    const OpNode& n = profile.node(static_cast<int>(i));
    if (n.est_rows < 0.0) continue;
    double q = QError(n.est_rows, n.prof.rows_out);
    if (q > worst) worst = q;
  }
  return worst;
}

int PipelineProfile::Add(std::string label, double est_rows,
                         std::vector<int> children) {
  OpNode node;
  node.label = std::move(label);
  node.est_rows = est_rows;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

uint64_t PipelineProfile::ChildTimeNs(int id) const {
  uint64_t total = 0;
  for (int child : node(id).children) total += node(child).prof.time_ns;
  return total;
}

void PipelineProfile::RenderNode(int id, int depth, std::string* out) const {
  const OpNode& n = node(id);
  uint64_t child_ns = ChildTimeNs(id);
  uint64_t self_ns = n.prof.time_ns > child_ns ? n.prof.time_ns - child_ns : 0;
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%s%s  (rows=%llu nexts=%llu self=%.3f ms", indent.c_str(),
                    n.label.c_str(),
                    static_cast<unsigned long long>(n.prof.rows_out),
                    static_cast<unsigned long long>(n.prof.next_calls),
                    static_cast<double>(self_ns) / 1e6);
  if (n.prof.batch_calls > 0) {
    *out += StrFormat(
        " batches=%llu rows/batch=%.1f",
        static_cast<unsigned long long>(n.prof.batch_calls),
        static_cast<double>(n.prof.rows_out) /
            static_cast<double>(n.prof.batch_calls));
  }
  if (n.est_rows >= 0.0) {
    *out += StrFormat(" est=%.0f q-err=%.2f", n.est_rows,
                      QError(n.est_rows, n.prof.rows_out));
  }
  *out += ")\n";
  for (int child : n.children) RenderNode(child, depth + 1, out);
}

std::string PipelineProfile::Render() const {
  std::string out;
  if (root_ < 0) return out;
  RenderNode(root_, 0, &out);
  return out;
}

std::vector<std::pair<std::string, uint64_t>> PipelineProfile::Totals() const {
  uint64_t nexts = 0;
  uint64_t batches = 0;
  for (const OpNode& n : nodes_) {
    nexts += n.prof.next_calls;
    batches += n.prof.batch_calls;
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  out.emplace_back("pipeline.operators", nodes_.size());
  out.emplace_back("pipeline.next_calls", nexts);
  out.emplace_back("pipeline.batch_calls", batches);
  if (root_ >= 0) {
    out.emplace_back("pipeline.rows_out", node(root_).prof.rows_out);
  }
  return out;
}

Result<bool> ProfiledIter::Next(RefRow* out) {
  if (!opened_) {
    opened_ = true;
    ++prof_->open_calls;
  }
  ++prof_->next_calls;
  uint64_t start = NowNs();
  Result<bool> result = inner_->Next(out);
  prof_->time_ns += NowNs() - start;
  if (result.ok() && result.value()) ++prof_->rows_out;
  return result;
}

Result<bool> ProfiledIter::NextBatch(Chunk* out) {
  if (!opened_) {
    opened_ = true;
    ++prof_->open_calls;
  }
  ++prof_->batch_calls;
  uint64_t start = NowNs();
  Result<bool> result = inner_->NextBatch(out);
  prof_->time_ns += NowNs() - start;
  if (result.ok() && result.value()) prof_->rows_out += out->rows;
  return result;
}

}  // namespace pascalr
