#include "obs/trace_export.h"

#include <cstdio>

#include "base/str_util.h"

namespace pascalr {

namespace {

/// Minimal JSON string escape: the control/quote/backslash set. Span
/// names and details are engine-generated ASCII, so nothing fancier is
/// needed, but stay correct if a relation name carries a quote.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEvent(std::string* out, const TraceSpan& span, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  // Complete ("X") events; trace-event timestamps are microseconds.
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
      "\"pid\":1,\"tid\":1",
      JsonEscape(span.name).c_str(),
      static_cast<double>(span.start_ns) / 1e3,
      static_cast<double>(span.dur_ns) / 1e3);
  if (!span.detail.empty() || !span.counters.empty()) {
    *out += ",\"args\":{";
    bool first_arg = true;
    if (!span.detail.empty()) {
      *out += StrFormat("\"detail\":\"%s\"", JsonEscape(span.detail).c_str());
      first_arg = false;
    }
    for (const auto& [name, value] : span.counters) {
      if (!first_arg) *out += ",";
      first_arg = false;
      *out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                        static_cast<unsigned long long>(value));
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string TracesToChromeJson(const std::vector<QueryTrace>& traces) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const QueryTrace& trace : traces) {
    for (const TraceSpan& span : trace.spans) {
      AppendEvent(&out, span, &first);
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<QueryTrace>& traces) {
  std::string json = TracesToChromeJson(traces);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace pascalr
