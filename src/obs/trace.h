// Query tracing: a span tree per query, recorded through RAII guards.
//
// The classic query-processor decomposition into compile-time and
// run-time stages (parse, bind, normalize, plan-search, collection,
// combination, construction) is already materialized in this engine's
// CompileCounters and ExecStats; a QueryTrace pins those counters to the
// *stage that moved them*, with wall-clock durations, so one query's time
// and work become attributable ("where inside this query did the 773
// units of work go?") instead of a flat total.
//
// Usage model: a Session owns a Tracer; while tracing is enabled
// (`SET TRACE ON;`) the session installs it as the thread-current tracer
// for the duration of each statement. Deep engine code — the planner, the
// collection builders, the cursor — opens spans through TraceSpanGuard
// without any signature plumbing:
//
//   TraceSpanGuard span("normalize");           // no-op when not tracing
//   TraceSpanGuard span("collection", &stats);  // + ExecStats delta
//
// When no tracer is installed (the default), a guard is one thread-local
// load and a null check; no clock is read, no counter is touched, and the
// engine's deterministic counters stay bit-identical to an untraced run
// (asserted by the observability tests).
//
// Span counters: each span closes with the *delta* of the global
// CompileCounters and (when a stats pointer was supplied) the ExecStats
// that moved while it was open, stored as name/value pairs — only the
// nonzero ones, so traces stay small.

#ifndef PASCALR_OBS_TRACE_H_
#define PASCALR_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/counters.h"
#include "exec/stats.h"

namespace pascalr {

struct TraceSpan {
  std::string name;
  std::string detail;  ///< free-form annotation (structure name, source)
  int parent = -1;     ///< index into QueryTrace::spans; -1 = trace root
  uint64_t start_ns = 0;  ///< since the Tracer's epoch (steady clock)
  uint64_t dur_ns = 0;
  /// Deterministic counters that moved inside this span (nonzero deltas
  /// of CompileCounters / ExecStats, plus profile summaries), name→value.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// One traced top-level operation (a query, an EXPLAIN ANALYZE, a
/// prepared Execute). Spans are stored in open order; a span's parent
/// always precedes it, so spans[0] is the root.
struct QueryTrace {
  std::string label;
  std::vector<TraceSpan> spans;

  /// Indented span tree with durations (us) and counters — the human
  /// rendering; chrome export lives in obs/trace_export.h.
  std::string ToString() const;
};

class Tracer {
 public:
  Tracer();

  /// The thread-current tracer, or nullptr when tracing is off.
  static Tracer* Current();

  /// Nanoseconds since this tracer's construction (steady clock).
  uint64_t NowNs() const;

  /// Starts a new QueryTrace and opens its root span. If a query is
  /// already open, opens a nested span instead (Session::Query wraps
  /// Prepare + Execute, each of which would otherwise start its own
  /// trace). Returns the span id to pass to CloseSpan.
  int BeginQuery(const std::string& kind, const std::string& label);

  /// Opens a child span of the innermost open span. Returns its id, or -1
  /// when no query is open (the span is dropped — tracing never fails).
  int OpenSpan(const std::string& name, const std::string& detail);

  /// Closes span `id`, recording duration and the supplied counter deltas.
  void CloseSpan(int id,
                 std::vector<std::pair<std::string, uint64_t>> counters);

  /// Appends an already-measured span (start/duration supplied by the
  /// caller) under the innermost open span of the latest trace — used by
  /// the cursor, whose drain outlives any single guard scope. No-op when
  /// no trace exists yet.
  void AddCompleteSpan(const std::string& name, const std::string& detail,
                       uint64_t start_ns, uint64_t dur_ns,
                       std::vector<std::pair<std::string, uint64_t>> counters);

  const std::vector<QueryTrace>& traces() const { return traces_; }
  void Clear();

 private:
  friend class ScopedTracerInstall;

  uint64_t epoch_ns_;              ///< steady-clock origin
  std::vector<QueryTrace> traces_;
  std::vector<int> stack_;         ///< open span ids in the current trace
};

/// Installs `tracer` as the thread-current tracer for the current scope
/// (pass nullptr for a no-op guard — the session's "tracing off" path).
/// Re-installing the already-current tracer is fine (statement execution
/// nests: ExecuteStatement -> RunExecute -> PreparedQuery::Execute).
class ScopedTracerInstall {
 public:
  explicit ScopedTracerInstall(Tracer* tracer);
  ~ScopedTracerInstall();

  ScopedTracerInstall(const ScopedTracerInstall&) = delete;
  ScopedTracerInstall& operator=(const ScopedTracerInstall&) = delete;

 private:
  Tracer* previous_;
};

/// RAII stage span. Snapshots the global CompileCounters (and `stats`
/// when given) at open; the destructor records the nonzero deltas.
class TraceSpanGuard {
 public:
  explicit TraceSpanGuard(const char* name, const ExecStats* stats = nullptr,
                          std::string detail = std::string());
  ~TraceSpanGuard();

  TraceSpanGuard(const TraceSpanGuard&) = delete;
  TraceSpanGuard& operator=(const TraceSpanGuard&) = delete;

 private:
  Tracer* tracer_;
  const ExecStats* stats_;
  int span_ = -1;
  CompileCounters compile_at_open_;
  ExecStats stats_at_open_;
};

/// RAII top-level trace (BeginQuery/CloseSpan pair). Same counter
/// snapshotting as TraceSpanGuard.
class QueryTraceGuard {
 public:
  QueryTraceGuard(const char* kind, const std::string& label,
                  const ExecStats* stats = nullptr);
  ~QueryTraceGuard();

  QueryTraceGuard(const QueryTraceGuard&) = delete;
  QueryTraceGuard& operator=(const QueryTraceGuard&) = delete;

 private:
  Tracer* tracer_;
  const ExecStats* stats_;
  int span_ = -1;
  CompileCounters compile_at_open_;
  ExecStats stats_at_open_;
};

/// The nonzero fields of `now - base`, named — shared by the guards and
/// the cursor's drain span. Saturating per field (peak_intermediate_rows
/// is a high-water mark, not a flow; its "delta" is the growth).
std::vector<std::pair<std::string, uint64_t>> ExecStatsDelta(
    const ExecStats& base, const ExecStats& now);
std::vector<std::pair<std::string, uint64_t>> CompileCountersDelta(
    const CompileCounters& base, const CompileCounters& now);

}  // namespace pascalr

#endif  // PASCALR_OBS_TRACE_H_
