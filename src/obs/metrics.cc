#include "obs/metrics.h"

#include "base/str_util.h"

namespace pascalr {

namespace {

/// Position of the highest set bit (0 for value 0 or 1).
size_t HighBit(uint64_t value) {
  size_t bit = 0;
  while (value >>= 1) ++bit;
  return bit;
}

}  // namespace

size_t LatencyHistogram::BucketOf(uint64_t value) {
  // Values below kSubBuckets map 1:1 (exact small-value resolution);
  // beyond that, each octave splits into kSubBuckets equal slices.
  if (value < kSubBuckets) return static_cast<size_t>(value);
  size_t octave = HighBit(value);
  uint64_t base = uint64_t{1} << octave;
  size_t sub = static_cast<size_t>((value - base) * kSubBuckets / base);
  size_t bucket = octave * kSubBuckets + sub;
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  size_t octave = bucket / kSubBuckets;
  size_t sub = bucket % kSubBuckets;
  uint64_t base = uint64_t{1} << octave;
  return base + base * (sub + 1) / kSubBuckets - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  // All relaxed: each field is an independent tally; a Dump racing a
  // Record may pair count/sum/buckets from adjacent instants, which is
  // the documented monitoring contract (header comment). The min/max CAS
  // loops need atomicity, not ordering.
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p <= 0.0) return min();
  // Rank of the p-quantile, 1-based, rounded up (p99 of 100 = rank 99).
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n));
  if (rank < p * static_cast<double>(n) || rank == 0) ++rank;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Never report beyond the observed extremes.
      uint64_t bound = BucketUpperBound(b);
      uint64_t hi = max();
      return bound > hi ? hi : bound;
    }
  }
  return max();
}

std::string LatencyHistogram::Summary() const {
  return StrFormat(
      "count=%llu mean=%llu p50=%llu p95=%llu p99=%llu max=%llu",
      static_cast<unsigned long long>(count()),
      static_cast<unsigned long long>(Mean()),
      static_cast<unsigned long long>(Percentile(0.50)),
      static_cast<unsigned long long>(Percentile(0.95)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(max()));
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::map<std::string, uint64_t> MetricsRegistry::CountersSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter.value();
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::GaugesSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge.value();
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSnapshot>
MetricsRegistry::HistogramsSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot& snap = out[name];
    snap.count = hist.count();
    snap.sum = hist.sum();
    snap.mean = hist.Mean();
    snap.p50 = hist.Percentile(0.50);
    snap.p95 = hist.Percentile(0.95);
    snap.p99 = hist.Percentile(0.99);
    snap.max = hist.max();
  }
  return out;
}

std::string MetricsRegistry::Dump() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("counter   %-28s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("gauge     %-28s %lld\n", name.c_str(),
                     static_cast<long long>(gauge.value()));
  }
  for (const auto& [name, hist] : histograms_) {
    out += StrFormat("histogram %-28s %s\n", name.c_str(),
                     hist.Summary().c_str());
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

}  // namespace pascalr
