// Chrome trace-event JSON export: renders a Tracer's recorded QueryTraces
// in the trace-event format consumed by chrome://tracing and Perfetto
// (https://ui.perfetto.dev) — complete "X" events with microsecond
// timestamps, span counters carried in args. One engine session exports
// as one process/one thread, so query stages line up on a single track.

#ifndef PASCALR_OBS_TRACE_EXPORT_H_
#define PASCALR_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "obs/trace.h"

namespace pascalr {

/// The traces as one JSON document: {"traceEvents":[...]}.
std::string TracesToChromeJson(const std::vector<QueryTrace>& traces);

/// Writes TracesToChromeJson(traces) to `path`.
Status WriteTraceFile(const std::string& path,
                      const std::vector<QueryTrace>& traces);

}  // namespace pascalr

#endif  // PASCALR_OBS_TRACE_EXPORT_H_
