#include "obs/prom_export.h"

#include "base/str_util.h"

namespace pascalr {

namespace {

/// "query.latency_us" → "pascalr_query_latency_us". Prometheus metric
/// names admit [a-zA-Z0-9_:]; everything else flattens to '_'.
std::string PromName(const std::string& name) {
  std::string out = "pascalr_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void EmitScalar(const std::string& name, const char* type,
                unsigned long long value, std::string* out) {
  *out += StrFormat("# TYPE %s %s\n%s %llu\n", name.c_str(), type,
                    name.c_str(), value);
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry& metrics,
                             const StmtStatsStore* stmt_stats,
                             const SlowQueryLog* slow_log) {
  std::string out;
  for (const auto& [name, value] : metrics.CountersSnapshot()) {
    EmitScalar(PromName(name), "counter",
               static_cast<unsigned long long>(value), &out);
  }
  for (const auto& [name, value] : metrics.GaugesSnapshot()) {
    const std::string prom = PromName(name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", prom.c_str(), prom.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, hist] : metrics.HistogramsSnapshot()) {
    const std::string prom = PromName(name);
    out += StrFormat("# TYPE %s summary\n", prom.c_str());
    out += StrFormat("%s{quantile=\"0.5\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(hist.p50));
    out += StrFormat("%s{quantile=\"0.95\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(hist.p95));
    out += StrFormat("%s{quantile=\"0.99\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(hist.p99));
    out += StrFormat("%s_sum %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(hist.sum));
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(hist.count));
  }
  if (stmt_stats != nullptr) {
    uint64_t calls = 0;
    uint64_t rows = 0;
    uint64_t work = 0;
    const std::vector<StmtStatsSnapshot> all = stmt_stats->SnapshotAll();
    for (const StmtStatsSnapshot& s : all) {
      calls += s.calls;
      rows += s.rows;
      work += s.counters.TotalWork();
    }
    EmitScalar("pascalr_statements_distinct", "gauge", all.size(), &out);
    EmitScalar("pascalr_statements_calls_total", "counter", calls, &out);
    EmitScalar("pascalr_statements_rows_total", "counter", rows, &out);
    EmitScalar("pascalr_statements_work_total", "counter", work, &out);
  }
  if (slow_log != nullptr) {
    EmitScalar("pascalr_slow_queries_total", "counter", slow_log->recorded(),
               &out);
  }
  return out;
}

}  // namespace pascalr
