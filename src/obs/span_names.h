// The registered trace-span vocabulary. Every span name the engine emits
// — top-level trace kinds (QueryTraceGuard) and stage spans
// (TraceSpanGuard / Tracer::AddCompleteSpan) — is declared here, and
// call sites reference these constants instead of string literals.
//
// Why a registry: span names are load-bearing across file boundaries —
// the Chrome-trace CI smoke greps for "query"/"plan"/"drain", tests
// assert span-tree shapes by name, and dashboards built on the exported
// traces key on them. A typo'd literal at one call site silently forks
// the vocabulary. tools/lint_invariants.py therefore bans string-literal
// span names in engine code (rule span-name-literal); adding a new stage
// means adding its constant here first.

#ifndef PASCALR_OBS_SPAN_NAMES_H_
#define PASCALR_OBS_SPAN_NAMES_H_

namespace pascalr {
namespace spans {

// ---- top-level trace kinds (QueryTraceGuard / Tracer::BeginQuery) ----
inline constexpr char kQuery[] = "query";
inline constexpr char kPrepare[] = "prepare";
inline constexpr char kExecute[] = "execute";
inline constexpr char kExplainAnalyze[] = "explain-analyze";

// ---- compile-time stages ---------------------------------------------
inline constexpr char kParse[] = "parse";
inline constexpr char kBind[] = "bind";
inline constexpr char kNormalize[] = "normalize";
inline constexpr char kPlan[] = "plan";
inline constexpr char kPlanSearch[] = "plan-search";

// ---- run-time stages --------------------------------------------------
inline constexpr char kCollection[] = "collection";
inline constexpr char kCombination[] = "combination";
inline constexpr char kScan[] = "scan";
inline constexpr char kBuildIndex[] = "build-index";
inline constexpr char kBuildValueList[] = "build-value-list";
inline constexpr char kBuildStructure[] = "build-structure";
inline constexpr char kDrain[] = "drain";
/// Parallel drain setup on the consumer thread: shared join-table
/// builds plus worker-pool spawn (the workers themselves run untraced —
/// the tracer is session-thread-local by design).
inline constexpr char kParallelDrain[] = "parallel-drain";

/// Every registered name, for validation code that wants to iterate the
/// vocabulary (the linter parses this header textually instead).
inline constexpr const char* kAllSpanNames[] = {
    kQuery,      kPrepare,     kExecute,        kExplainAnalyze,
    kParse,      kBind,        kNormalize,      kPlan,
    kPlanSearch, kCollection,  kCombination,    kScan,
    kBuildIndex, kBuildValueList, kBuildStructure, kDrain,
    kParallelDrain,
};

}  // namespace spans
}  // namespace pascalr

#endif  // PASCALR_OBS_SPAN_NAMES_H_
