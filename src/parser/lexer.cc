#include "parser/lexer.h"

#include <cctype>

#include "base/str_util.h"

namespace pascalr {

std::string_view TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kEnd: return "end of input";
    case TokenType::kIdent: return "identifier";
    case TokenType::kInt: return "integer";
    case TokenType::kString: return "string";
    case TokenType::kParam: return "parameter";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kColon: return "':'";
    case TokenType::kDot: return "'.'";
    case TokenType::kDotDot: return "'..'";
    case TokenType::kAssign: return "':='";
    case TokenType::kInsertOp: return "':+'";
    case TokenType::kDeleteOp: return "':-'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kKwType: return "TYPE";
    case TokenType::kKwVar: return "VAR";
    case TokenType::kKwRelation: return "RELATION";
    case TokenType::kKwOf: return "OF";
    case TokenType::kKwRecord: return "RECORD";
    case TokenType::kKwEnd: return "END";
    case TokenType::kKwEach: return "EACH";
    case TokenType::kKwIn: return "IN";
    case TokenType::kKwSome: return "SOME";
    case TokenType::kKwAll: return "ALL";
    case TokenType::kKwAnd: return "AND";
    case TokenType::kKwOr: return "OR";
    case TokenType::kKwNot: return "NOT";
    case TokenType::kKwTrue: return "TRUE";
    case TokenType::kKwFalse: return "FALSE";
    case TokenType::kKwInteger: return "INTEGER";
    case TokenType::kKwStringType: return "STRING";
    case TokenType::kKwBoolean: return "BOOLEAN";
    case TokenType::kKwPrint: return "PRINT";
    case TokenType::kKwExplain: return "EXPLAIN";
  }
  return "?";
}

std::string Token::Describe() const {
  if (type == TokenType::kIdent) return "identifier '" + text + "'";
  if (type == TokenType::kInt) return "integer " + std::to_string(int_value);
  if (type == TokenType::kString) return "string '" + text + "'";
  if (type == TokenType::kParam) return "parameter '$" + text + "'";
  return std::string(TokenTypeToString(type));
}

Status Lexer::ErrorAt(const std::string& message) const {
  return Status::ParseError(
      StrFormat("%d:%d: %s", line_, column_, message.c_str()));
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments(Status* status) {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '{') {
      while (!AtEnd() && Peek() != '}') Advance();
      if (AtEnd()) {
        *status = ErrorAt("unterminated { comment");
        return;
      }
      Advance();  // '}'
    } else if (c == '(' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == ')')) Advance();
      if (AtEnd()) {
        *status = ErrorAt("unterminated (* comment");
        return;
      }
      Advance();
      Advance();
    } else {
      return;
    }
  }
}

Result<Token> Lexer::LexNumber() {
  Token t;
  t.type = TokenType::kInt;
  t.line = line_;
  t.column = column_;
  int64_t value = 0;
  bool overflow = false;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    int digit = Peek() - '0';
    if (value > (INT64_MAX - digit) / 10) overflow = true;
    if (!overflow) value = value * 10 + digit;
    t.text += Advance();
  }
  if (overflow) return ErrorAt("integer literal overflows 64 bits");
  t.int_value = value;
  return t;
}

Result<Token> Lexer::LexString() {
  Token t;
  t.type = TokenType::kString;
  t.line = line_;
  t.column = column_;
  Advance();  // opening quote
  while (true) {
    if (AtEnd()) return ErrorAt("unterminated string literal");
    char c = Advance();
    if (c == '\'') {
      if (Peek() == '\'') {  // '' escapes a quote
        t.text += '\'';
        Advance();
      } else {
        break;
      }
    } else {
      t.text += c;
    }
  }
  return t;
}

Token Lexer::LexIdentOrKeyword() {
  Token t;
  t.line = line_;
  t.column = column_;
  // '$' continues an identifier (the sys$ system relations) but cannot
  // start one — at token start it still introduces a $param marker.
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_' || Peek() == '$')) {
    t.text += Advance();
  }
  std::string lower = AsciiToLower(t.text);
  struct Kw {
    const char* name;
    TokenType type;
  };
  static const Kw kKeywords[] = {
      {"type", TokenType::kKwType},       {"var", TokenType::kKwVar},
      {"relation", TokenType::kKwRelation}, {"of", TokenType::kKwOf},
      {"record", TokenType::kKwRecord},   {"end", TokenType::kKwEnd},
      {"each", TokenType::kKwEach},       {"in", TokenType::kKwIn},
      {"some", TokenType::kKwSome},       {"all", TokenType::kKwAll},
      {"and", TokenType::kKwAnd},         {"or", TokenType::kKwOr},
      {"not", TokenType::kKwNot},         {"true", TokenType::kKwTrue},
      {"false", TokenType::kKwFalse},     {"integer", TokenType::kKwInteger},
      {"string", TokenType::kKwStringType}, {"boolean", TokenType::kKwBoolean},
      {"print", TokenType::kKwPrint},     {"explain", TokenType::kKwExplain},
  };
  for (const Kw& kw : kKeywords) {
    if (lower == kw.name) {
      t.type = kw.type;
      return t;
    }
  }
  t.type = TokenType::kIdent;
  return t;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Status comment_status = Status::OK();
    SkipWhitespaceAndComments(&comment_status);
    if (!comment_status.ok()) return comment_status;
    if (AtEnd()) break;

    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      PASCALR_ASSIGN_OR_RETURN(Token t, LexNumber());
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(LexIdentOrKeyword());
      continue;
    }
    if (c == '\'') {
      PASCALR_ASSIGN_OR_RETURN(Token t, LexString());
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '$') {
      // $name — a host-variable parameter marker. The name follows
      // identifier rules; the token's text is the name without the '$'.
      Token t;
      t.type = TokenType::kParam;
      t.line = line_;
      t.column = column_;
      Advance();  // '$'
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        t.text += Advance();
      }
      if (t.text.empty()) {
        return ErrorAt("expected a parameter name after '$'");
      }
      tokens.push_back(std::move(t));
      continue;
    }

    Token t;
    t.line = line_;
    t.column = column_;
    auto single = [&](TokenType type) {
      t.type = type;
      t.text = Advance();
    };
    auto pair = [&](TokenType type) {
      t.type = type;
      t.text += Advance();
      t.text += Advance();
    };
    switch (c) {
      case '[': single(TokenType::kLBracket); break;
      case ']': single(TokenType::kRBracket); break;
      case '(': single(TokenType::kLParen); break;
      case ')': single(TokenType::kRParen); break;
      case ',': single(TokenType::kComma); break;
      case '-': single(TokenType::kMinus); break;
      case ';': single(TokenType::kSemicolon); break;
      case '=': single(TokenType::kEq); break;
      case '.':
        if (Peek(1) == '.') {
          pair(TokenType::kDotDot);
        } else {
          single(TokenType::kDot);
        }
        break;
      case ':':
        if (Peek(1) == '=') {
          pair(TokenType::kAssign);
        } else if (Peek(1) == '+') {
          pair(TokenType::kInsertOp);
        } else if (Peek(1) == '-') {
          pair(TokenType::kDeleteOp);
        } else {
          single(TokenType::kColon);
        }
        break;
      case '<':
        if (Peek(1) == '=') {
          pair(TokenType::kLe);
        } else if (Peek(1) == '>') {
          pair(TokenType::kNe);
        } else {
          single(TokenType::kLt);
        }
        break;
      case '>':
        if (Peek(1) == '=') {
          pair(TokenType::kGe);
        } else {
          single(TokenType::kGt);
        }
        break;
      default:
        return ErrorAt(StrFormat("unexpected character '%c'", c));
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.line = line_;
  end.column = column_;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace pascalr
