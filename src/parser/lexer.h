// Hand-written lexer for the PASCAL/R query language. Keywords are
// case-insensitive (PASCAL tradition); identifiers preserve their spelling.
// Comments: (* ... *) and { ... }.

#ifndef PASCALR_PARSER_LEXER_H_
#define PASCALR_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "parser/token.h"

namespace pascalr {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  /// Tokenises the whole input. On error the status carries line/column.
  Result<std::vector<Token>> Tokenize();

 private:
  Status ErrorAt(const std::string& message) const;
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= src_.size(); }
  void SkipWhitespaceAndComments(Status* status);

  Result<Token> LexNumber();
  Result<Token> LexString();
  Token LexIdentOrKeyword();

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace pascalr

#endif  // PASCALR_PARSER_LEXER_H_
