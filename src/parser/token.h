// Tokens of the PASCAL/R query language.

#ifndef PASCALR_PARSER_TOKEN_H_
#define PASCALR_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace pascalr {

enum class TokenType : uint8_t {
  kEnd,
  kIdent,
  kInt,
  kString,  // 'quoted'
  kParam,   // $name — host-variable parameter marker (Prepare/Execute)
  // Punctuation.
  kLBracket,    // [
  kRBracket,    // ]
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kSemicolon,   // ;
  kColon,       // :
  kDot,         // .
  kDotDot,      // ..
  kAssign,      // :=
  kInsertOp,    // :+
  kDeleteOp,    // :-
  kMinus,       // - (sign of negative literals, e.g. in STATS directives)
  // Comparison / brackets (contextually < > delimit tuples).
  kEq,          // =
  kNe,          // <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  // Keywords (case-insensitive).
  kKwType,
  kKwVar,
  kKwRelation,
  kKwOf,
  kKwRecord,
  kKwEnd,
  kKwEach,
  kKwIn,
  kKwSome,
  kKwAll,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwTrue,
  kKwFalse,
  kKwInteger,
  kKwStringType,
  kKwBoolean,
  kKwPrint,
  kKwExplain,
  // ANALYZE, SET, STATS, PREPARE, EXECUTE, and INDEX are deliberately NOT
  // reserved words: they are recognised contextually at statement starts
  // (parser.cc) so that relations and components may keep those names.
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< raw text (identifier spelling, string body)
  int64_t int_value = 0;  ///< for kInt
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

std::string_view TokenTypeToString(TokenType t);

}  // namespace pascalr

#endif  // PASCALR_PARSER_TOKEN_H_
