// Recursive-descent parser for the PASCAL/R query language.
//
// Script grammar (statements end with ';'):
//
//   TYPE name = (label, label, ...);            enumeration type
//   TYPE name = lo..hi;                         integer subrange type
//   TYPE name = STRING(n);                      bounded string type
//   VAR name : RELATION <k1,k2> OF RECORD
//         comp : typeexpr; ... END;             relation declaration
//   target := selection;                        query assignment
//   rel :+ [<lit, lit, ...>];                   insert (PASCAL/R `:+`)
//   rel :- [<lit, ...>];                        delete by key (`:-`)
//   PRINT rel;
//   EXPLAIN selection;
//   PREPARE name AS selection;                  named prepared query
//   EXECUTE name [WITH $p = lit, ...];          run it with parameters
//   INDEX rel component [ORDERED];              permanent component index
//
//   selection  := '[' '<' v.c {',' v.c} '>' OF ranges ':' wff ']'
//   ranges     := EACH v IN range {',' EACH v IN range}
//   range      := rel | '[' EACH v IN rel ':' wff ']'      (extended range)
//   wff        := conj {OR conj}
//   conj       := unary {AND unary}
//   unary      := NOT unary | quant | '(' wff ')' | atom | TRUE | FALSE
//   quant      := (SOME|ALL) v IN range body
//   body       := quant | '(' wff ')'           (paper's juxtaposition form)
//   atom       := operand relop operand
//   operand    := v '.' comp | literal | '$' name   (parameter marker)
//
// The parser is purely syntactic: names are unresolved, enum-label literals
// stay identifiers until the binder types them.

#ifndef PASCALR_PARSER_PARSER_H_
#define PASCALR_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "base/status.h"
#include "calculus/ast.h"
#include "parser/token.h"

namespace pascalr {

/// Unresolved component type in a declaration.
struct RawType {
  enum class Kind : uint8_t {
    kNamed,       ///< reference to a TYPE declaration
    kInt,         ///< INTEGER
    kIntRange,    ///< lo..hi
    kString,      ///< STRING or STRING(n)
    kBool,        ///< BOOLEAN
    kInlineEnum,  ///< (a, b, c)
  } kind = Kind::kInt;
  std::string name;
  int64_t lo = 0;
  int64_t hi = 0;
  size_t max_len = 0;
  std::vector<std::string> labels;
};

/// Unresolved literal in an insert/delete tuple.
struct RawLiteral {
  enum class Kind : uint8_t { kInt, kString, kIdent, kBool } kind = Kind::kInt;
  int64_t int_value = 0;
  std::string text;
  bool bool_value = false;
};

struct TypeDeclStmt {
  std::string name;
  RawType type;
};

struct RelationDeclStmt {
  std::string name;
  std::vector<std::string> key_components;
  std::vector<std::pair<std::string, RawType>> components;
};

struct AssignStmt {
  std::string target;
  SelectionExpr selection;
};

struct InsertStmt {
  std::string target;
  std::vector<RawLiteral> values;
};

struct DeleteStmt {
  std::string target;
  std::vector<RawLiteral> key;
};

struct PrintStmt {
  std::string relation;
};

/// `EXPLAIN selection;` renders the plan; `EXPLAIN ANALYZE selection;`
/// additionally executes it and annotates the operator tree with actual
/// rows, per-operator self-time, and estimated-vs-actual q-error.
struct ExplainStmt {
  SelectionExpr selection;
  bool analyze = false;
};

/// `METRICS;` — dumps the session's MetricsRegistry (counters, gauges,
/// latency histograms).
struct MetricsStmt {};

/// `ANALYZE;` refreshes catalog statistics for every relation;
/// `ANALYZE rel;` for one relation.
struct AnalyzeStmt {
  std::string relation;  ///< empty: every relation
};

/// `SET name value;` — session option assignment, e.g.
/// `SET OPTLEVEL AUTO;`, `SET OPTLEVEL 2;`, `SET DIVISION SORT;`.
struct SetStmt {
  std::string name;   ///< lower-cased option name
  std::string value;  ///< lower-cased identifier or integer spelling
};

/// `PREPARE name AS selection;` — compiles a named prepared query held by
/// the session. The selection may contain `$param` host-variable markers.
struct PrepareStmt {
  std::string name;
  SelectionExpr selection;
};

/// `EXECUTE name [WITH $p = lit, ...];` — runs a prepared query with the
/// given parameter values and prints the result tuples.
struct ExecuteStmt {
  std::string name;
  std::vector<std::pair<std::string, RawLiteral>> params;
};

/// `INDEX rel component [ORDERED];` — declares (and builds) a permanent
/// component index; ORDERED selects a B+tree over a hash index. Emitted by
/// ExportScript so dumps carry their permanent indexes.
struct IndexStmt {
  std::string relation;
  std::string component;
  bool ordered = false;
};

/// One COLUMN clause of a STATS statement.
struct StatsColumnClause {
  std::string component;
  uint64_t distinct = 0;
  bool has_min_max = false;
  RawLiteral min;  ///< typed by the component's schema type at execution
  RawLiteral max;
  bool has_histogram = false;
  int64_t histogram_lo = 0;
  int64_t histogram_hi = 0;
  std::vector<uint64_t> buckets;
};

/// `STATS rel CARDINALITY n COLUMN c DISTINCT d [MIN lit MAX lit]
/// [HISTOGRAM lo hi (b, b, ...)] ... ;` — seeds catalog statistics
/// without a relation scan. Emitted by ExportScript so a reloaded
/// database plans well before its first ANALYZE.
struct StatsStmt {
  std::string relation;
  uint64_t cardinality = 0;
  std::vector<StatsColumnClause> columns;
};

using Statement =
    std::variant<TypeDeclStmt, RelationDeclStmt, AssignStmt, InsertStmt,
                 DeleteStmt, PrintStmt, ExplainStmt, AnalyzeStmt, SetStmt,
                 StatsStmt, PrepareStmt, ExecuteStmt, IndexStmt, MetricsStmt>;

struct Script {
  std::vector<Statement> statements;
};

class Parser {
 public:
  explicit Parser(std::string_view source) : source_(source) {}

  /// Parses a whole script.
  Result<Script> ParseScript();

  /// Parses a single selection expression (no trailing ';').
  Result<SelectionExpr> ParseSelectionOnly();

 private:
  Status Init();
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n = 1) const {
    size_t i = pos_ + n;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Check(TokenType t) const { return Cur().type == t; }
  bool Accept(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType t);
  Status ErrorHere(const std::string& message) const;

  /// Consumes the current token when it is the (case-insensitive)
  /// contextual keyword `word`.
  bool AcceptWord(const char* word);
  Status ExpectWord(const char* word);
  Result<int64_t> ParseSignedInt();
  Result<uint64_t> ParseCount();

  Result<Statement> ParseStatement();
  Result<StatsStmt> ParseStatsBody();
  Result<TypeDeclStmt> ParseTypeDecl();
  Result<RelationDeclStmt> ParseRelationDecl();
  Result<RawType> ParseTypeExpr();
  Result<std::vector<RawLiteral>> ParseTupleLiteral();
  Result<RawLiteral> ParseRawLiteral();

  Result<SelectionExpr> ParseSelection();
  Result<RangeExpr> ParseRange(std::string* bound_var_out);
  Result<FormulaPtr> ParseWff();
  Result<FormulaPtr> ParseConj();
  Result<FormulaPtr> ParseUnary();
  Result<FormulaPtr> ParseQuant();
  Result<Operand> ParseOperand();
  Result<CompareOp> ParseRelop();

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_PARSER_PARSER_H_
