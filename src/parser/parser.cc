#include "parser/parser.h"

#include "base/counters.h"
#include "base/str_util.h"
#include "parser/lexer.h"

namespace pascalr {

Status Parser::Init() {
  ++GlobalCompileCounters().parses;
  Lexer lexer(source_);
  PASCALR_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  pos_ = 0;
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Cur();
  return Status::ParseError(StrFormat("%d:%d: %s (found %s)", t.line, t.column,
                                      message.c_str(), t.Describe().c_str()));
}

Status Parser::Expect(TokenType t) {
  if (Accept(t)) return Status::OK();
  return ErrorHere("expected " + std::string(TokenTypeToString(t)));
}

Result<Script> Parser::ParseScript() {
  PASCALR_RETURN_IF_ERROR(Init());
  Script script;
  while (!Check(TokenType::kEnd)) {
    PASCALR_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
    script.statements.push_back(std::move(stmt));
  }
  return script;
}

Result<SelectionExpr> Parser::ParseSelectionOnly() {
  PASCALR_RETURN_IF_ERROR(Init());
  PASCALR_ASSIGN_OR_RETURN(SelectionExpr sel, ParseSelection());
  if (!Check(TokenType::kEnd)) {
    return ErrorHere("trailing input after selection");
  }
  return sel;
}

Result<Statement> Parser::ParseStatement() {
  switch (Cur().type) {
    case TokenType::kKwType: {
      PASCALR_ASSIGN_OR_RETURN(TypeDeclStmt s, ParseTypeDecl());
      return Statement(std::move(s));
    }
    case TokenType::kKwVar: {
      PASCALR_ASSIGN_OR_RETURN(RelationDeclStmt s, ParseRelationDecl());
      return Statement(std::move(s));
    }
    case TokenType::kKwPrint: {
      Advance();
      if (!Check(TokenType::kIdent)) return ErrorHere("expected relation name");
      PrintStmt s;
      s.relation = Cur().text;
      Advance();
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
      return Statement(std::move(s));
    }
    case TokenType::kKwExplain: {
      Advance();
      ExplainStmt s;
      // ANALYZE is contextual here too: a selection can never start with
      // a bare identifier, so the word is unambiguous after EXPLAIN.
      s.analyze = AcceptWord("analyze");
      PASCALR_ASSIGN_OR_RETURN(s.selection, ParseSelection());
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
      return Statement(std::move(s));
    }
    case TokenType::kIdent: {
      std::string name = Cur().text;
      TokenType next = Ahead().type;
      // ANALYZE, SET, STATS, PREPARE, EXECUTE, INDEX, and METRICS are
      // contextual statement keywords, not reserved words: they only act
      // as keywords
      // where no identifier-led statement (:=, :+, :-) could parse, so
      // relations named `set` or `index` keep working.
      std::string lower = AsciiToLower(name);
      if (lower == "analyze" &&
          (next == TokenType::kSemicolon || next == TokenType::kIdent)) {
        Advance();
        AnalyzeStmt s;
        if (Check(TokenType::kIdent)) {
          s.relation = Cur().text;
          Advance();
        }
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (lower == "metrics" && next == TokenType::kSemicolon) {
        Advance();
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(MetricsStmt{});
      }
      if (lower == "stats" && next == TokenType::kIdent) {
        Advance();
        PASCALR_ASSIGN_OR_RETURN(StatsStmt s, ParseStatsBody());
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (lower == "prepare" && next == TokenType::kIdent) {
        Advance();
        PrepareStmt s;
        s.name = Cur().text;
        Advance();
        PASCALR_RETURN_IF_ERROR(ExpectWord("as"));
        PASCALR_ASSIGN_OR_RETURN(s.selection, ParseSelection());
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (lower == "execute" && next == TokenType::kIdent) {
        Advance();
        ExecuteStmt s;
        s.name = Cur().text;
        Advance();
        if (AcceptWord("with")) {
          while (true) {
            if (!Check(TokenType::kParam)) {
              return ErrorHere("expected a '$parameter' name");
            }
            std::string param = Cur().text;
            Advance();
            PASCALR_RETURN_IF_ERROR(Expect(TokenType::kEq));
            PASCALR_ASSIGN_OR_RETURN(RawLiteral value, ParseRawLiteral());
            s.params.emplace_back(std::move(param), std::move(value));
            if (!Accept(TokenType::kComma)) break;
          }
        }
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (lower == "index" && next == TokenType::kIdent) {
        Advance();
        IndexStmt s;
        s.relation = Cur().text;
        Advance();
        if (!Check(TokenType::kIdent)) {
          return ErrorHere("expected component name");
        }
        s.component = Cur().text;
        Advance();
        if (AcceptWord("ordered")) s.ordered = true;
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (lower == "set" && next == TokenType::kIdent) {
        Advance();
        SetStmt s;
        s.name = AsciiToLower(Cur().text);
        Advance();
        if (Check(TokenType::kIdent)) {
          s.value = AsciiToLower(Cur().text);
          Advance();
        } else if (Check(TokenType::kInt)) {
          s.value = std::to_string(Cur().int_value);
          Advance();
        } else {
          return ErrorHere("expected option value (identifier or integer)");
        }
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (next == TokenType::kAssign) {
        Advance();
        Advance();
        AssignStmt s;
        s.target = std::move(name);
        PASCALR_ASSIGN_OR_RETURN(s.selection, ParseSelection());
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        return Statement(std::move(s));
      }
      if (next == TokenType::kInsertOp || next == TokenType::kDeleteOp) {
        Advance();
        Advance();
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLBracket));
        PASCALR_ASSIGN_OR_RETURN(std::vector<RawLiteral> values,
                                 ParseTupleLiteral());
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRBracket));
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
        if (next == TokenType::kInsertOp) {
          InsertStmt s;
          s.target = std::move(name);
          s.values = std::move(values);
          return Statement(std::move(s));
        }
        DeleteStmt s;
        s.target = std::move(name);
        s.key = std::move(values);
        return Statement(std::move(s));
      }
      return ErrorHere("expected ':=', ':+', or ':-' after identifier");
    }
    default:
      return ErrorHere("expected a statement");
  }
}

Result<TypeDeclStmt> Parser::ParseTypeDecl() {
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwType));
  if (!Check(TokenType::kIdent)) return ErrorHere("expected type name");
  TypeDeclStmt s;
  s.name = Cur().text;
  Advance();
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kEq));
  PASCALR_ASSIGN_OR_RETURN(s.type, ParseTypeExpr());
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
  return s;
}

Result<RawType> Parser::ParseTypeExpr() {
  RawType t;
  switch (Cur().type) {
    case TokenType::kKwInteger:
      t.kind = RawType::Kind::kInt;
      Advance();
      return t;
    case TokenType::kKwBoolean:
      t.kind = RawType::Kind::kBool;
      Advance();
      return t;
    case TokenType::kKwStringType:
      t.kind = RawType::Kind::kString;
      Advance();
      if (Accept(TokenType::kLParen)) {
        if (!Check(TokenType::kInt)) return ErrorHere("expected string length");
        t.max_len = static_cast<size_t>(Cur().int_value);
        Advance();
        PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      }
      return t;
    case TokenType::kInt: {
      t.kind = RawType::Kind::kIntRange;
      t.lo = Cur().int_value;
      Advance();
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kDotDot));
      if (!Check(TokenType::kInt)) return ErrorHere("expected range upper bound");
      t.hi = Cur().int_value;
      Advance();
      if (t.hi < t.lo) return ErrorHere("empty integer subrange");
      return t;
    }
    case TokenType::kLParen: {
      t.kind = RawType::Kind::kInlineEnum;
      Advance();
      while (true) {
        if (!Check(TokenType::kIdent)) return ErrorHere("expected enum label");
        t.labels.push_back(Cur().text);
        Advance();
        if (!Accept(TokenType::kComma)) break;
      }
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return t;
    }
    case TokenType::kIdent:
      t.kind = RawType::Kind::kNamed;
      t.name = Cur().text;
      Advance();
      return t;
    default:
      return ErrorHere("expected a type expression");
  }
}

Result<RelationDeclStmt> Parser::ParseRelationDecl() {
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwVar));
  if (!Check(TokenType::kIdent)) return ErrorHere("expected relation name");
  RelationDeclStmt s;
  s.name = Cur().text;
  Advance();
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kColon));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwRelation));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLt));
  while (true) {
    if (!Check(TokenType::kIdent)) return ErrorHere("expected key component");
    s.key_components.push_back(Cur().text);
    Advance();
    if (!Accept(TokenType::kComma)) break;
  }
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kGt));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwOf));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwRecord));
  while (true) {
    if (!Check(TokenType::kIdent)) return ErrorHere("expected component name");
    std::string comp = Cur().text;
    Advance();
    PASCALR_RETURN_IF_ERROR(Expect(TokenType::kColon));
    PASCALR_ASSIGN_OR_RETURN(RawType type, ParseTypeExpr());
    s.components.emplace_back(std::move(comp), std::move(type));
    if (!Accept(TokenType::kSemicolon)) break;
    if (Check(TokenType::kKwEnd)) break;  // trailing ';' before END is fine
  }
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwEnd));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
  return s;
}

Result<std::vector<RawLiteral>> Parser::ParseTupleLiteral() {
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLt));
  std::vector<RawLiteral> values;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(RawLiteral lit, ParseRawLiteral());
    values.push_back(std::move(lit));
    if (!Accept(TokenType::kComma)) break;
  }
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kGt));
  return values;
}

bool Parser::AcceptWord(const char* word) {
  if (!Check(TokenType::kIdent) || AsciiToLower(Cur().text) != word) {
    return false;
  }
  Advance();
  return true;
}

Status Parser::ExpectWord(const char* word) {
  if (AcceptWord(word)) return Status::OK();
  return ErrorHere(std::string("expected ") + word);
}

Result<int64_t> Parser::ParseSignedInt() {
  bool negative = Accept(TokenType::kMinus);
  if (!Check(TokenType::kInt)) return ErrorHere("expected an integer");
  int64_t value = Cur().int_value;
  Advance();
  return negative ? -value : value;
}

Result<uint64_t> Parser::ParseCount() {
  if (!Check(TokenType::kInt)) {
    return ErrorHere("expected a non-negative integer");
  }
  int64_t value = Cur().int_value;
  Advance();
  if (value < 0) return ErrorHere("expected a non-negative integer");
  return static_cast<uint64_t>(value);
}

Result<StatsStmt> Parser::ParseStatsBody() {
  StatsStmt s;
  if (!Check(TokenType::kIdent)) return ErrorHere("expected relation name");
  s.relation = Cur().text;
  Advance();
  PASCALR_RETURN_IF_ERROR(ExpectWord("cardinality"));
  PASCALR_ASSIGN_OR_RETURN(s.cardinality, ParseCount());
  while (AcceptWord("column")) {
    StatsColumnClause col;
    if (!Check(TokenType::kIdent)) return ErrorHere("expected component name");
    col.component = Cur().text;
    Advance();
    PASCALR_RETURN_IF_ERROR(ExpectWord("distinct"));
    PASCALR_ASSIGN_OR_RETURN(col.distinct, ParseCount());
    if (AcceptWord("min")) {
      col.has_min_max = true;
      PASCALR_ASSIGN_OR_RETURN(col.min, ParseRawLiteral());
      PASCALR_RETURN_IF_ERROR(ExpectWord("max"));
      PASCALR_ASSIGN_OR_RETURN(col.max, ParseRawLiteral());
    }
    if (AcceptWord("histogram")) {
      col.has_histogram = true;
      PASCALR_ASSIGN_OR_RETURN(col.histogram_lo, ParseSignedInt());
      PASCALR_ASSIGN_OR_RETURN(col.histogram_hi, ParseSignedInt());
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      while (true) {
        PASCALR_ASSIGN_OR_RETURN(uint64_t bucket, ParseCount());
        col.buckets.push_back(bucket);
        if (!Accept(TokenType::kComma)) break;
      }
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    s.columns.push_back(std::move(col));
  }
  return s;
}

Result<RawLiteral> Parser::ParseRawLiteral() {
  RawLiteral lit;
  if (Check(TokenType::kMinus) && Ahead().type == TokenType::kInt) {
    Advance();
    lit.kind = RawLiteral::Kind::kInt;
    lit.int_value = -Cur().int_value;
    Advance();
    return lit;
  }
  switch (Cur().type) {
    case TokenType::kInt:
      lit.kind = RawLiteral::Kind::kInt;
      lit.int_value = Cur().int_value;
      Advance();
      return lit;
    case TokenType::kString:
      lit.kind = RawLiteral::Kind::kString;
      lit.text = Cur().text;
      Advance();
      return lit;
    case TokenType::kIdent:
      lit.kind = RawLiteral::Kind::kIdent;
      lit.text = Cur().text;
      Advance();
      return lit;
    case TokenType::kKwTrue:
    case TokenType::kKwFalse:
      lit.kind = RawLiteral::Kind::kBool;
      lit.bool_value = Check(TokenType::kKwTrue);
      Advance();
      return lit;
    default:
      return ErrorHere("expected a literal");
  }
}

Result<SelectionExpr> Parser::ParseSelection() {
  SelectionExpr sel;
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLBracket));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLt));
  while (true) {
    if (!Check(TokenType::kIdent)) {
      return ErrorHere("expected 'var.component' in component selection");
    }
    OutputComponent out;
    out.var = Cur().text;
    Advance();
    PASCALR_RETURN_IF_ERROR(Expect(TokenType::kDot));
    if (!Check(TokenType::kIdent)) return ErrorHere("expected component name");
    out.component = Cur().text;
    Advance();
    sel.projection.push_back(std::move(out));
    if (!Accept(TokenType::kComma)) break;
  }
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kGt));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwOf));
  while (true) {
    PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwEach));
    if (!Check(TokenType::kIdent)) return ErrorHere("expected variable name");
    RangeDecl decl;
    decl.var = Cur().text;
    Advance();
    PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwIn));
    std::string inner_var;
    PASCALR_ASSIGN_OR_RETURN(decl.range, ParseRange(&inner_var));
    if (decl.range.IsExtended() && inner_var != decl.var) {
      RenameVariable(decl.range.restriction.get(), inner_var, decl.var);
    }
    sel.free_vars.push_back(std::move(decl));
    if (!Accept(TokenType::kComma)) break;
  }
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kColon));
  PASCALR_ASSIGN_OR_RETURN(sel.wff, ParseWff());
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRBracket));
  return sel;
}

Result<RangeExpr> Parser::ParseRange(std::string* bound_var_out) {
  if (Check(TokenType::kIdent)) {
    RangeExpr r(Cur().text);
    Advance();
    *bound_var_out = "";
    return r;
  }
  // Extended range: [EACH v IN rel: wff]
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kLBracket));
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwEach));
  if (!Check(TokenType::kIdent)) return ErrorHere("expected variable name");
  std::string var = Cur().text;
  Advance();
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwIn));
  if (!Check(TokenType::kIdent)) {
    return ErrorHere("expected relation name in extended range");
  }
  RangeExpr r(Cur().text);
  Advance();
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kColon));
  PASCALR_ASSIGN_OR_RETURN(r.restriction, ParseWff());
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRBracket));
  *bound_var_out = var;
  return r;
}

Result<FormulaPtr> Parser::ParseWff() {
  PASCALR_ASSIGN_OR_RETURN(FormulaPtr first, ParseConj());
  if (!Check(TokenType::kKwOr)) return first;
  std::vector<FormulaPtr> children;
  children.push_back(std::move(first));
  while (Accept(TokenType::kKwOr)) {
    PASCALR_ASSIGN_OR_RETURN(FormulaPtr next, ParseConj());
    children.push_back(std::move(next));
  }
  return Formula::Or(std::move(children));
}

Result<FormulaPtr> Parser::ParseConj() {
  PASCALR_ASSIGN_OR_RETURN(FormulaPtr first, ParseUnary());
  if (!Check(TokenType::kKwAnd)) return first;
  std::vector<FormulaPtr> children;
  children.push_back(std::move(first));
  while (Accept(TokenType::kKwAnd)) {
    PASCALR_ASSIGN_OR_RETURN(FormulaPtr next, ParseUnary());
    children.push_back(std::move(next));
  }
  return Formula::And(std::move(children));
}

Result<FormulaPtr> Parser::ParseUnary() {
  switch (Cur().type) {
    case TokenType::kKwNot: {
      Advance();
      PASCALR_ASSIGN_OR_RETURN(FormulaPtr inner, ParseUnary());
      return Formula::Not(std::move(inner));
    }
    case TokenType::kKwSome:
    case TokenType::kKwAll:
      return ParseQuant();
    case TokenType::kKwTrue:
      Advance();
      return Formula::True();
    case TokenType::kKwFalse:
      Advance();
      return Formula::False();
    case TokenType::kLParen: {
      Advance();
      PASCALR_ASSIGN_OR_RETURN(FormulaPtr inner, ParseWff());
      PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return inner;
    }
    default: {
      // Atom: operand relop operand.
      PASCALR_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
      PASCALR_ASSIGN_OR_RETURN(CompareOp op, ParseRelop());
      PASCALR_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
      return Formula::Compare(std::move(lhs), op, std::move(rhs));
    }
  }
}

Result<FormulaPtr> Parser::ParseQuant() {
  Quantifier q =
      Check(TokenType::kKwSome) ? Quantifier::kSome : Quantifier::kAll;
  Advance();
  if (!Check(TokenType::kIdent)) return ErrorHere("expected variable name");
  std::string var = Cur().text;
  Advance();
  PASCALR_RETURN_IF_ERROR(Expect(TokenType::kKwIn));
  std::string inner_var;
  PASCALR_ASSIGN_OR_RETURN(RangeExpr range, ParseRange(&inner_var));
  if (range.IsExtended() && inner_var != var) {
    RenameVariable(range.restriction.get(), inner_var, var);
  }
  // Body: another quantifier (juxtaposition) or a parenthesised wff.
  FormulaPtr body;
  if (Check(TokenType::kKwSome) || Check(TokenType::kKwAll)) {
    PASCALR_ASSIGN_OR_RETURN(body, ParseQuant());
  } else if (Check(TokenType::kLParen)) {
    Advance();
    PASCALR_ASSIGN_OR_RETURN(body, ParseWff());
    PASCALR_RETURN_IF_ERROR(Expect(TokenType::kRParen));
  } else {
    return ErrorHere(
        "expected a parenthesised body or another quantifier after range");
  }
  return Formula::Quant(q, std::move(var), std::move(range), std::move(body));
}

Result<Operand> Parser::ParseOperand() {
  switch (Cur().type) {
    case TokenType::kIdent: {
      std::string first = Cur().text;
      Advance();
      if (Accept(TokenType::kDot)) {
        if (!Check(TokenType::kIdent)) {
          return ErrorHere("expected component name after '.'");
        }
        std::string comp = Cur().text;
        Advance();
        return Operand::Component(std::move(first), std::move(comp));
      }
      // A bare identifier is an (as yet untyped) enum-label literal; the
      // binder resolves it against the other operand's enumeration type.
      Operand o;
      o.kind = Operand::Kind::kLiteral;
      o.enum_label = std::move(first);
      o.literal = Value::MakeEnum(-1);
      return o;
    }
    case TokenType::kInt: {
      Operand o = Operand::Literal(Value::MakeInt(Cur().int_value));
      o.type = Type::Int();
      Advance();
      return o;
    }
    case TokenType::kString: {
      Operand o = Operand::Literal(Value::MakeString(Cur().text));
      o.type = Type::String();
      Advance();
      return o;
    }
    case TokenType::kKwTrue:
    case TokenType::kKwFalse: {
      Operand o = Operand::Literal(Value::MakeBool(Check(TokenType::kKwTrue)));
      o.type = Type::Bool();
      Advance();
      return o;
    }
    case TokenType::kParam: {
      // Host-variable parameter: typed by the binder against the opposite
      // component operand, valued at Execute.
      Operand o = Operand::Param(Cur().text);
      Advance();
      return o;
    }
    default:
      return ErrorHere("expected an operand");
  }
}

Result<CompareOp> Parser::ParseRelop() {
  switch (Cur().type) {
    case TokenType::kEq:
      Advance();
      return CompareOp::kEq;
    case TokenType::kNe:
      Advance();
      return CompareOp::kNe;
    case TokenType::kLt:
      Advance();
      return CompareOp::kLt;
    case TokenType::kLe:
      Advance();
      return CompareOp::kLe;
    case TokenType::kGt:
      Advance();
      return CompareOp::kGt;
    case TokenType::kGe:
      Advance();
      return CompareOp::kGe;
    default:
      return ErrorHere("expected a comparison operator");
  }
}

}  // namespace pascalr
