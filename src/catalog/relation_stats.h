// Catalog statistics (the ANALYZE pass): per-relation cardinality and
// per-component distinct counts, min/max, and equi-width histograms.
//
// The paper justifies its strategies by the work they avoid; predicting
// that work needs data about the data. Statistics are computed by one
// relation scan, cached on the Database keyed by the relation's mod_count
// (the same lazy-invalidation scheme permanent indexes use), and consumed
// by the cost model in src/cost/.

#ifndef PASCALR_CATALOG_RELATION_STATS_H_
#define PASCALR_CATALOG_RELATION_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "value/value.h"

namespace pascalr {

/// Equi-width histogram over a numeric domain (ints, enum ordinals,
/// booleans as 0/1). Strings get no histogram — only distinct counts and
/// min/max — matching the classical "interpolation only on ordered
/// numeric domains" rule.
struct Histogram {
  int64_t lo = 0;          ///< smallest observed value
  int64_t hi = 0;          ///< largest observed value
  uint64_t total = 0;      ///< number of values summarised
  std::vector<uint64_t> buckets;  ///< equi-width counts over [lo, hi]

  bool empty() const { return total == 0; }
  /// Index of the bucket holding `x`; requires lo <= x <= hi.
  size_t BucketOf(int64_t x) const;
  /// Fraction of values v with v <= x (linear interpolation in-bucket).
  double FractionLe(int64_t x) const;
  /// Fraction of values v with v < x.
  double FractionLt(int64_t x) const;
};

struct ColumnStats {
  std::string name;
  uint64_t distinct = 0;  ///< distinct values observed
  bool has_min_max = false;
  Value min;              ///< valid when has_min_max
  Value max;
  bool numeric = false;   ///< int / enum / bool: histogram is populated
  Histogram histogram;

  /// Estimated fraction of elements whose component satisfies
  /// `component op literal`. Falls back to uniform-distinct estimates when
  /// no histogram applies.
  double Selectivity(CompareOp op, const Value& literal) const;
};

struct RelationStats {
  std::string relation;
  uint64_t cardinality = 0;
  uint64_t built_at_mod = 0;  ///< Relation::mod_count() at computation time
  std::vector<ColumnStats> columns;  ///< by schema component position

  std::string ToString() const;
};

/// One full scan of `rel` computing cardinality, distinct counts, min/max
/// and (for numeric components) equi-width histograms.
RelationStats ComputeRelationStats(const Relation& rel,
                                   size_t histogram_buckets = 32);

/// Maps an int / enum-ordinal / bool value onto the numeric histogram
/// domain; returns false for strings.
bool NumericValueRep(const Value& v, int64_t* out);

}  // namespace pascalr

#endif  // PASCALR_CATALOG_RELATION_STATS_H_
