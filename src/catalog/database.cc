#include "catalog/database.h"

#include "base/str_util.h"
#include "index/btree_index.h"
#include "index/hash_index.h"

namespace pascalr {

Status Database::RegisterEnum(std::shared_ptr<const EnumInfo> info) {
  if (info == nullptr || info->name.empty()) {
    return Status::InvalidArgument("enum type needs a name");
  }
  if (enums_.count(info->name) > 0) {
    return Status::AlreadyExists("type '" + info->name + "' already declared");
  }
  if (info->labels.empty()) {
    return Status::InvalidArgument("enum type '" + info->name +
                                   "' needs at least one label");
  }
  enums_[info->name] = std::move(info);
  return Status::OK();
}

std::shared_ptr<const EnumInfo> Database::FindEnum(
    const std::string& name) const {
  auto it = enums_.find(name);
  return it == enums_.end() ? nullptr : it->second;
}

Result<Relation*> Database::CreateRelation(const std::string& name,
                                           Schema schema) {
  if (name.empty()) return Status::InvalidArgument("relation needs a name");
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already declared");
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(std::make_unique<Relation>(id, name, std::move(schema)));
  by_name_[name] = id;
  return relations_.back().get();
}

Status Database::DropRelation(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  // Ids are positional; keep the slot but null the entry.
  relations_[it->second].reset();
  by_name_.erase(it);
  for (auto idx = indexes_.begin(); idx != indexes_.end();) {
    if (idx->first.rfind(name + ".", 0) == 0) {
      idx = indexes_.erase(idx);
    } else {
      ++idx;
    }
  }
  stats_.erase(name);
  ++stats_epoch_;
  return Status::OK();
}

std::vector<Database::IndexDescription> Database::ListIndexes() const {
  std::vector<IndexDescription> out;
  for (const auto& [key, entry] : indexes_) {
    std::string::size_type dot = key.rfind('.');
    if (dot == std::string::npos) continue;
    out.push_back({key.substr(0, dot), key.substr(dot + 1), entry.ordered});
  }
  return out;
}

Relation* Database::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return relations_[it->second].get();
}

Relation* Database::FindRelation(RelationId id) const {
  if (id >= relations_.size()) return nullptr;
  return relations_[id].get();
}

Result<const Tuple*> Database::Deref(const Ref& ref) const {
  Relation* rel = FindRelation(ref.relation);
  if (rel == nullptr) {
    return Status::NotFound(
        StrFormat("reference into unknown relation %u", ref.relation));
  }
  return rel->Deref(ref);
}

Result<ComponentIndex*> Database::EnsureIndex(const std::string& relation,
                                              const std::string& component,
                                              bool ordered) {
  Relation* rel = FindRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  int pos = rel->schema().FindComponent(component);
  if (pos < 0) {
    return Status::NotFound("relation '" + relation + "' has no component '" +
                            component + "'");
  }
  std::string key = IndexKey(relation, component);
  auto it = indexes_.find(key);
  if (it != indexes_.end() && it->second.ordered == ordered &&
      it->second.built_at_mod == rel->mod_count()) {
    return it->second.index.get();
  }
  IndexEntry entry;
  entry.component_pos = static_cast<size_t>(pos);
  entry.ordered = ordered;
  std::string index_name = "ind_" + relation + "_" + component;
  if (ordered) {
    entry.index = std::make_unique<BTreeIndex>(index_name);
  } else {
    entry.index = std::make_unique<HashIndex>(index_name);
  }
  rel->Scan([&](const Ref& r, const Tuple& t) {
    entry.index->Add(t.at(entry.component_pos), r);
    return true;
  });
  entry.built_at_mod = rel->mod_count();
  ComponentIndex* out = entry.index.get();
  indexes_[key] = std::move(entry);
  // A new (or rebuilt) permanent index changes what the planner can
  // borrow; move the epoch so cached prepared plans reconsider it.
  ++stats_epoch_;
  return out;
}

ComponentIndex* Database::FindFreshIndex(const std::string& relation,
                                         const std::string& component) const {
  auto it = indexes_.find(IndexKey(relation, component));
  if (it == indexes_.end()) return nullptr;
  Relation* rel = FindRelation(relation);
  if (rel == nullptr || it->second.built_at_mod != rel->mod_count()) {
    return nullptr;
  }
  return it->second.index.get();
}

Result<const RelationStats*> Database::Analyze(const std::string& relation) {
  Relation* rel = FindRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  auto it = stats_.find(relation);
  if (it != stats_.end() && it->second.built_at_mod == rel->mod_count()) {
    return &it->second;
  }
  stats_[relation] = ComputeRelationStats(*rel);
  ++stats_epoch_;
  return &stats_[relation];
}

Status Database::AnalyzeAll() {
  for (const std::string& name : RelationNames()) {
    PASCALR_ASSIGN_OR_RETURN(const RelationStats* ignored, Analyze(name));
    (void)ignored;
  }
  return Status::OK();
}

Status Database::SeedStats(RelationStats stats) {
  Relation* rel = FindRelation(stats.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + stats.relation + "'");
  }
  if (stats.columns.size() != rel->schema().num_components()) {
    return Status::InvalidArgument(StrFormat(
        "statistics for %zu column(s) do not match schema arity %zu",
        stats.columns.size(), rel->schema().num_components()));
  }
  stats.built_at_mod = rel->mod_count();
  stats_[stats.relation] = std::move(stats);
  ++stats_epoch_;
  return Status::OK();
}

const RelationStats* Database::FindFreshStats(
    const std::string& relation) const {
  auto it = stats_.find(relation);
  if (it == stats_.end()) return nullptr;
  Relation* rel = FindRelation(relation);
  if (rel == nullptr || it->second.built_at_mod != rel->mod_count()) {
    return nullptr;
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) out.push_back(name);
  return out;
}

std::string Database::DebugString() const {
  std::string out = "database:\n";
  for (const auto& [name, id] : by_name_) {
    const Relation* rel = relations_[id].get();
    out += StrFormat("  %s : %s  -- %zu elements\n", name.c_str(),
                     rel->schema().ToString().c_str(), rel->cardinality());
  }
  for (const auto& [key, entry] : indexes_) {
    out += StrFormat("  index %s (%s, %zu entries)\n", key.c_str(),
                     entry.ordered ? "ordered" : "hash", entry.index->size());
  }
  return out;
}

}  // namespace pascalr
