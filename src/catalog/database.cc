#include "catalog/database.h"

#include "base/str_util.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "obs/system_relations.h"

namespace pascalr {

const Snapshot* Database::AmbientSnapshot() const {
  // A write statement reads the live catalog — mirrors ReadWatermark's
  // batch-before-snapshot priority in storage/relation.cc.
  WriteBatch* batch = CurrentWriteBatch();
  if (batch != nullptr && batch->state() == &concurrency_) return nullptr;
  const Snapshot* snap = CurrentSnapshot();
  if (snap != nullptr && snap->origin == &concurrency_) return snap;
  return nullptr;
}

namespace {
/// Catalog mutation prologue for serving mode: DDL self-commits — the
/// change plus its db_version bump happen atomically under commit_mu, so
/// a snapshot never observes a half-created or half-dropped relation.
/// Holds nothing while serving is off.
//
// Unanalyzed: conditional acquisition is outside clang's scope-based
// analysis; commit_mu is a protocol lock with no GUARDED_BY members, so
// opting out forfeits no member checking.
class CommitLockIfServing {
 public:
  CommitLockIfServing(bool serving, Mutex& mu) NO_THREAD_SAFETY_ANALYSIS
      : mu_(serving ? &mu : nullptr) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~CommitLockIfServing() NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) mu_->Unlock();
  }
  CommitLockIfServing(const CommitLockIfServing&) = delete;
  CommitLockIfServing& operator=(const CommitLockIfServing&) = delete;

  bool owns_lock() const { return mu_ != nullptr; }

 private:
  Mutex* mu_;
};
}  // namespace

Status Database::RegisterEnum(std::shared_ptr<const EnumInfo> info) {
  if (info == nullptr || info->name.empty()) {
    return Status::InvalidArgument("enum type needs a name");
  }
  WriterMutexLock cat(catalog_mu_);
  if (enums_.count(info->name) > 0) {
    return Status::AlreadyExists("type '" + info->name + "' already declared");
  }
  if (info->labels.empty()) {
    return Status::InvalidArgument("enum type '" + info->name +
                                   "' needs at least one label");
  }
  enums_[info->name] = std::move(info);
  return Status::OK();
}

std::shared_ptr<const EnumInfo> Database::FindEnum(
    const std::string& name) const {
  ReaderMutexLock cat(catalog_mu_);
  auto it = enums_.find(name);
  return it == enums_.end() ? nullptr : it->second;
}

Result<Relation*> Database::CreateRelation(const std::string& name,
                                           Schema schema) {
  if (name.empty()) return Status::InvalidArgument("relation needs a name");
  // DDL self-commits: while serving, the catalog change and its db_version
  // bump are one atomic step under commit_mu, so no snapshot can observe a
  // half-created relation.
  CommitLockIfServing commit(serving(), concurrency_.commit_mu);
  WriterMutexLock cat(catalog_mu_);
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already declared");
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(std::make_shared<Relation>(id, name, std::move(schema)));
  relations_.back()->AttachConcurrency(&concurrency_);
  by_name_[name] = id;
  if (commit.owns_lock()) {
    RelaxedFetchAdd(concurrency_.db_version, 1);
  }
  return relations_.back().get();
}

Status Database::DropRelation(const std::string& name) {
  CommitLockIfServing commit(serving(), concurrency_.commit_mu);
  WriterMutexLock cat(catalog_mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  // Ids are positional; keep the slot but null the entry. Snapshots hold
  // their own strong refs, so readers over the dropped relation are safe.
  relations_[it->second].reset();
  by_name_.erase(it);
  const std::string index_prefix = name + ".";
  for (auto idx = indexes_.begin(); idx != indexes_.end();) {
    if (idx->first.rfind(index_prefix, 0) == 0) {
      if (serving()) {
        // An executing plan in another session may still hold the raw
        // index pointer; park it until the next compaction quiesce.
        retired_indexes_.push_back(std::move(idx->second.index));
      }
      idx = indexes_.erase(idx);
    } else {
      ++idx;
    }
  }
  auto st = stats_.find(name);
  if (st != stats_.end()) {
    if (serving()) retired_stats_.push_back(std::move(st->second));
    stats_.erase(st);
  }
  stats_epoch_.fetch_add(1, std::memory_order_release);
  if (commit.owns_lock()) {
    RelaxedFetchAdd(concurrency_.db_version, 1);
  }
  return Status::OK();
}

std::vector<Database::IndexDescription> Database::ListIndexes() const {
  ReaderMutexLock cat(catalog_mu_);
  std::vector<IndexDescription> out;
  for (const auto& [key, entry] : indexes_) {
    std::string::size_type dot = key.rfind('.');
    if (dot == std::string::npos) continue;
    out.push_back({key.substr(0, dot), key.substr(dot + 1), entry.ordered});
  }
  return out;
}

Relation* Database::FindRelation(const std::string& name) const {
  if (const Snapshot* snap = AmbientSnapshot()) {
    // Resolve through the snapshot's captured catalog: relations dropped
    // after capture stay visible, ones created after capture do not.
    for (const auto& rel : snap->relations) {
      if (rel != nullptr && rel->name() == name) return rel.get();
    }
    return nullptr;
  }
  ReaderMutexLock cat(catalog_mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return relations_[it->second].get();
}

Relation* Database::FindRelation(RelationId id) const {
  if (const Snapshot* snap = AmbientSnapshot()) {
    return id < snap->relations.size() ? snap->relations[id].get() : nullptr;
  }
  ReaderMutexLock cat(catalog_mu_);
  if (id >= relations_.size()) return nullptr;
  return relations_[id].get();
}

Result<const Tuple*> Database::Deref(const Ref& ref) const {
  Relation* rel = FindRelation(ref.relation);
  if (rel == nullptr) {
    return Status::NotFound(
        StrFormat("reference into unknown relation %u", ref.relation));
  }
  return rel->Deref(ref);
}

Result<ComponentIndex*> Database::EnsureIndex(const std::string& relation,
                                              const std::string& component,
                                              bool ordered) {
  WriterMutexLock cat(catalog_mu_);
  auto rel_it = by_name_.find(relation);
  Relation* rel =
      rel_it == by_name_.end() ? nullptr : relations_[rel_it->second].get();
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  int pos = rel->schema().FindComponent(component);
  if (pos < 0) {
    return Status::NotFound("relation '" + relation + "' has no component '" +
                            component + "'");
  }
  std::string key = IndexKey(relation, component);
  auto it = indexes_.find(key);
  if (it != indexes_.end() && it->second.ordered == ordered &&
      it->second.built_at_mod == rel->mod_count()) {
    return it->second.index.get();
  }
  IndexEntry entry;
  entry.component_pos = static_cast<size_t>(pos);
  entry.ordered = ordered;
  std::string index_name = "ind_" + relation + "_" + component;
  if (ordered) {
    entry.index = std::make_unique<BTreeIndex>(index_name);
  } else {
    entry.index = std::make_unique<HashIndex>(index_name);
  }
  rel->Scan([&](const Ref& r, const Tuple& t) {
    entry.index->Add(t.at(entry.component_pos), r);
    return true;
  });
  entry.built_at_mod = rel->mod_count();
  ComponentIndex* out = entry.index.get();
  if (it != indexes_.end()) {
    if (serving()) retired_indexes_.push_back(std::move(it->second.index));
    it->second = std::move(entry);
  } else {
    indexes_[key] = std::move(entry);
  }
  // A new (or rebuilt) permanent index changes what the planner can
  // borrow; move the epoch so cached prepared plans reconsider it.
  stats_epoch_.fetch_add(1, std::memory_order_release);
  return out;
}

ComponentIndex* Database::FindFreshIndex(const std::string& relation,
                                         const std::string& component) const {
  // The relation's mod_count is ambient-aware, so a snapshot reader only
  // gets the index when it was built at exactly its watermark.
  Relation* rel = FindRelation(relation);
  if (rel == nullptr) return nullptr;
  ReaderMutexLock cat(catalog_mu_);
  auto it = indexes_.find(IndexKey(relation, component));
  if (it == indexes_.end()) return nullptr;
  if (it->second.built_at_mod != rel->mod_count()) return nullptr;
  return it->second.index.get();
}

Result<const RelationStats*> Database::Analyze(const std::string& relation) {
  WriterMutexLock cat(catalog_mu_);
  auto rel_it = by_name_.find(relation);
  Relation* rel =
      rel_it == by_name_.end() ? nullptr : relations_[rel_it->second].get();
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  auto it = stats_.find(relation);
  if (it != stats_.end() && it->second->built_at_mod == rel->mod_count()) {
    return it->second.get();
  }
  auto fresh =
      std::make_shared<const RelationStats>(ComputeRelationStats(*rel));
  if (it != stats_.end()) {
    if (serving()) retired_stats_.push_back(std::move(it->second));
    it->second = fresh;
  } else {
    stats_[relation] = fresh;
  }
  stats_epoch_.fetch_add(1, std::memory_order_release);
  return fresh.get();
}

Status Database::AnalyzeAll() {
  for (const std::string& name : RelationNames()) {
    // System relations keep their quietly seeded trivial statistics —
    // ANALYZE over them would bump the stats epoch on every refresh.
    if (IsSystemRelationName(name)) continue;
    PASCALR_ASSIGN_OR_RETURN(const RelationStats* ignored, Analyze(name));
    (void)ignored;
  }
  return Status::OK();
}

Status Database::SeedStats(RelationStats stats) {
  return SeedStatsImpl(std::move(stats), /*bump_epoch=*/true);
}

Status Database::SeedStatsQuiet(RelationStats stats) {
  return SeedStatsImpl(std::move(stats), /*bump_epoch=*/false);
}

Status Database::SeedStatsImpl(RelationStats stats, bool bump_epoch) {
  WriterMutexLock cat(catalog_mu_);
  auto rel_it = by_name_.find(stats.relation);
  Relation* rel =
      rel_it == by_name_.end() ? nullptr : relations_[rel_it->second].get();
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + stats.relation + "'");
  }
  if (stats.columns.size() != rel->schema().num_components()) {
    return Status::InvalidArgument(StrFormat(
        "statistics for %zu column(s) do not match schema arity %zu",
        stats.columns.size(), rel->schema().num_components()));
  }
  stats.built_at_mod = rel->mod_count();
  std::string name = stats.relation;
  auto fresh = std::make_shared<const RelationStats>(std::move(stats));
  auto it = stats_.find(name);
  if (it != stats_.end()) {
    if (serving()) retired_stats_.push_back(std::move(it->second));
    it->second = std::move(fresh);
  } else {
    stats_[name] = std::move(fresh);
  }
  if (bump_epoch) stats_epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

const RelationStats* Database::FindFreshStats(
    const std::string& relation) const {
  Relation* rel = FindRelation(relation);
  if (rel == nullptr) return nullptr;
  ReaderMutexLock cat(catalog_mu_);
  auto it = stats_.find(relation);
  if (it == stats_.end()) return nullptr;
  if (it->second->built_at_mod != rel->mod_count()) return nullptr;
  return it->second.get();
}

std::vector<std::string> Database::RelationNames() const {
  ReaderMutexLock cat(catalog_mu_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) out.push_back(name);
  return out;
}

std::string Database::DebugString() const {
  ReaderMutexLock cat(catalog_mu_);
  std::string out = "database:\n";
  for (const auto& [name, id] : by_name_) {
    const Relation* rel = relations_[id].get();
    out += StrFormat("  %s : %s  -- %zu elements\n", name.c_str(),
                     rel->schema().ToString().c_str(), rel->cardinality());
  }
  for (const auto& [key, entry] : indexes_) {
    out += StrFormat("  index %s (%s, %zu entries)\n", key.c_str(),
                     entry.ordered ? "ordered" : "hash", entry.index->size());
  }
  return out;
}

// ---- concurrent serving ---------------------------------------------

void Database::EnableConcurrentServing() {
  // Relations are attached to concurrency_ at creation; flipping the flag
  // is all it takes. One-way by design.
  concurrency_.serving.store(true, std::memory_order_release);
}

SnapshotRef Database::TakeSnapshot() const {
  if (!serving()) return nullptr;
  return concurrency_.registry.Register([this] {
    auto snap = std::make_unique<Snapshot>();
    snap->origin = &concurrency_;
    // commit_mu pins (db_version, watermarks, live counts) to one commit
    // boundary; the catalog shared lock pins the relation set.
    MutexLock commit(concurrency_.commit_mu);
    ReaderMutexLock cat(catalog_mu_);
    snap->db_version = RelaxedLoad(concurrency_.db_version);
    snap->relations = relations_;
    snap->watermarks.reserve(relations_.size());
    snap->live_counts.reserve(relations_.size());
    for (const auto& rel : relations_) {
      snap->watermarks.push_back(rel == nullptr ? 0 : rel->published_mod());
      snap->live_counts.push_back(rel == nullptr ? 0 : rel->published_live());
    }
    RelaxedFetchAdd(concurrency_.counters.snapshots_taken, 1);
    return std::unique_ptr<const Snapshot>(std::move(snap));
  });
}

SnapshotRef Database::SnapshotForRead() const {
  if (AmbientSnapshot() != nullptr) return CurrentSnapshotRef();
  return TakeSnapshot();
}

uint64_t Database::WriteStatementGuard::Commit() {
  install_.reset();
  uint64_t version = 0;
  if (batch_ != nullptr) {
    version = batch_->Commit();
    batch_.reset();
  }
  lock_.Unlock();  // no-op when the guard was default-constructed
  return version;
}

Database::WriteStatementGuard Database::BeginWriteStatement() {
  WriteStatementGuard guard;
  guard.lock_ = MovableMutexLock(write_mu_);
  guard.batch_ = std::make_unique<WriteBatch>(&concurrency_);
  guard.install_ =
      std::make_unique<ScopedWriteBatchInstall>(guard.batch_.get());
  return guard;
}

size_t Database::CompactAllLocked() {
  WriterMutexLock cat(catalog_mu_);
  size_t retired = 0;
  for (const auto& rel : relations_) {
    if (rel != nullptr) retired += rel->CompactVersions();
  }
  retired_indexes_.clear();
  retired_stats_.clear();
  return retired;
}

size_t Database::Compact() {
  MutexLock write_lock(write_mu_);
  size_t retired = 0;
  concurrency_.registry.Quiesce([&] { retired = CompactAllLocked(); });
  RelaxedFetchAdd(concurrency_.counters.compactions, 1);
  RelaxedFetchAdd(concurrency_.counters.versions_retired, retired);
  return retired;
}

bool Database::MaybeCompact() {
  if (!serving()) return false;
  size_t dead = 0;
  {
    ReaderMutexLock cat(catalog_mu_);
    for (const auto& rel : relations_) {
      if (rel != nullptr) dead += rel->delta().delta_deletes();
    }
  }
  if (dead < kCompactionThreshold) return false;
  // Callers must NOT hold a WriteStatementGuard (write_mu_ is
  // non-recursive); sessions call this after their statement commits.
  if (!write_mu_.TryLock()) return false;
  size_t retired = 0;
  const bool ran =
      concurrency_.registry.TryQuiesce([&] { retired = CompactAllLocked(); });
  if (ran) {
    RelaxedFetchAdd(concurrency_.counters.compactions, 1);
    RelaxedFetchAdd(concurrency_.counters.versions_retired, retired);
  }
  write_mu_.Unlock();
  return ran;
}

}  // namespace pascalr
