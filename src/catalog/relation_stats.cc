#include "catalog/relation_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "base/math_util.h"
#include "base/str_util.h"
#include "index/index.h"

namespace pascalr {

bool NumericValueRep(const Value& v, int64_t* out) {
  if (v.is_int()) {
    *out = v.AsInt();
    return true;
  }
  if (v.is_enum()) {
    *out = v.AsEnumOrdinal();
    return true;
  }
  if (v.is_bool()) {
    *out = v.AsBool() ? 1 : 0;
    return true;
  }
  return false;
}

size_t Histogram::BucketOf(int64_t x) const {
  if (buckets.empty() || hi <= lo) return 0;
  double span = static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  double idx = (static_cast<double>(x) - static_cast<double>(lo)) *
               static_cast<double>(buckets.size()) / span;
  size_t b = static_cast<size_t>(idx);
  return b >= buckets.size() ? buckets.size() - 1 : b;
}

double Histogram::FractionLe(int64_t x) const {
  if (empty() || buckets.empty()) return 0.0;
  if (x < lo) return 0.0;
  if (x >= hi) return 1.0;
  double span = static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  double bucket_span = span / static_cast<double>(buckets.size());
  size_t b = BucketOf(x);
  uint64_t below = 0;
  for (size_t i = 0; i < b; ++i) below += buckets[i];
  // Linear interpolation inside bucket b: values covered up to and
  // including x, over the bucket's own width.
  double b_lo = static_cast<double>(lo) + static_cast<double>(b) * bucket_span;
  double in_bucket = (static_cast<double>(x) - b_lo + 1.0) / bucket_span;
  double covered = static_cast<double>(below) +
                   Clamp01(in_bucket) * static_cast<double>(buckets[b]);
  return Clamp01(covered / static_cast<double>(total));
}

double Histogram::FractionLt(int64_t x) const {
  if (empty()) return 0.0;
  if (x <= lo) return 0.0;
  return FractionLe(x - 1);
}

double ColumnStats::Selectivity(CompareOp op, const Value& literal) const {
  // Out-of-range probes resolve exactly from min/max regardless of kind.
  if (has_min_max && literal.SameKind(min)) {
    int vs_min = literal.Compare(min);
    int vs_max = literal.Compare(max);
    switch (op) {
      case CompareOp::kEq:
        if (vs_min < 0 || vs_max > 0) return 0.0;
        break;
      case CompareOp::kNe:
        if (vs_min < 0 || vs_max > 0) return 1.0;
        break;
      case CompareOp::kLt:  // component < literal
        if (vs_min <= 0) return 0.0;
        if (vs_max > 0) return 1.0;
        break;
      case CompareOp::kLe:
        if (vs_min < 0) return 0.0;
        if (vs_max >= 0) return 1.0;
        break;
      case CompareOp::kGt:
        if (vs_max >= 0) return 0.0;
        if (vs_min < 0) return 1.0;
        break;
      case CompareOp::kGe:
        if (vs_max > 0) return 0.0;
        if (vs_min <= 0) return 1.0;
        break;
    }
  }

  int64_t x = 0;
  if (numeric && !histogram.empty() && NumericValueRep(literal, &x)) {
    switch (op) {
      case CompareOp::kEq: {
        size_t b = histogram.BucketOf(x);
        if (histogram.buckets.empty() || histogram.buckets[b] == 0) {
          return 0.0;
        }
        double share = static_cast<double>(histogram.buckets[b]) /
                       static_cast<double>(histogram.total);
        // Distinct values assumed spread like the row counts: the bucket
        // holds ~distinct*share of them, each equally likely — but never
        // more than the bucket's own domain width (a single-value bucket
        // answers equality exactly).
        double bucket_width =
            (static_cast<double>(histogram.hi) -
             static_cast<double>(histogram.lo) + 1.0) /
            static_cast<double>(histogram.buckets.size());
        double distinct_in_bucket =
            std::max(1.0, std::min(static_cast<double>(distinct) * share,
                                   std::ceil(bucket_width)));
        return Clamp01(share / distinct_in_bucket);
      }
      case CompareOp::kNe:
        return Clamp01(1.0 - Selectivity(CompareOp::kEq, literal));
      case CompareOp::kLt:
        return histogram.FractionLt(x);
      case CompareOp::kLe:
        return histogram.FractionLe(x);
      case CompareOp::kGt:
        return Clamp01(1.0 - histogram.FractionLe(x));
      case CompareOp::kGe:
        return Clamp01(1.0 - histogram.FractionLt(x));
    }
  }

  // No histogram (strings, or no data): uniform-distinct fallbacks.
  switch (op) {
    case CompareOp::kEq:
      return distinct == 0 ? 0.0 : 1.0 / static_cast<double>(distinct);
    case CompareOp::kNe:
      return distinct == 0 ? 0.0
                           : 1.0 - 1.0 / static_cast<double>(distinct);
    default:
      return distinct == 0 ? 0.0 : 1.0 / 3.0;
  }
}

std::string RelationStats::ToString() const {
  std::string out = StrFormat("%s: %llu elements (analyzed at mod %llu)\n",
                              relation.c_str(),
                              static_cast<unsigned long long>(cardinality),
                              static_cast<unsigned long long>(built_at_mod));
  for (const ColumnStats& c : columns) {
    out += StrFormat("  %-10s distinct=%llu", c.name.c_str(),
                     static_cast<unsigned long long>(c.distinct));
    if (c.has_min_max) {
      out += " min=" + c.min.ToString() + " max=" + c.max.ToString();
    }
    if (c.numeric && !c.histogram.empty()) {
      out += StrFormat(" histogram[%zu]", c.histogram.buckets.size());
    }
    out += "\n";
  }
  return out;
}

RelationStats ComputeRelationStats(const Relation& rel,
                                   size_t histogram_buckets) {
  RelationStats stats;
  stats.relation = rel.name();
  stats.cardinality = rel.cardinality();
  stats.built_at_mod = rel.mod_count();

  const size_t n = rel.schema().num_components();
  stats.columns.resize(n);
  std::vector<std::unordered_set<Value, ValueHash>> distinct(n);
  std::vector<std::vector<int64_t>> numeric_values(n);
  for (size_t i = 0; i < n; ++i) {
    stats.columns[i].name = rel.schema().component(i).name;
  }

  rel.Scan([&](const Ref&, const Tuple& tuple) {
    for (size_t i = 0; i < n; ++i) {
      const Value& v = tuple.at(i);
      ColumnStats& col = stats.columns[i];
      distinct[i].insert(v);
      if (!col.has_min_max) {
        col.min = v;
        col.max = v;
        col.has_min_max = true;
      } else {
        if (v.Compare(col.min) < 0) col.min = v;
        if (v.Compare(col.max) > 0) col.max = v;
      }
      int64_t x;
      if (NumericValueRep(v, &x)) numeric_values[i].push_back(x);
    }
    return true;
  });

  for (size_t i = 0; i < n; ++i) {
    ColumnStats& col = stats.columns[i];
    col.distinct = distinct[i].size();
    if (numeric_values[i].empty()) continue;
    col.numeric = true;
    Histogram& h = col.histogram;
    h.lo = *std::min_element(numeric_values[i].begin(),
                             numeric_values[i].end());
    h.hi = *std::max_element(numeric_values[i].begin(),
                             numeric_values[i].end());
    h.total = numeric_values[i].size();
    // Span computed in unsigned arithmetic: hi - lo can exceed INT64_MAX
    // for wide subranges, which would be signed overflow (UB).
    uint64_t span =
        static_cast<uint64_t>(h.hi) - static_cast<uint64_t>(h.lo) + 1;
    if (span == 0) span = std::numeric_limits<uint64_t>::max();  // full domain
    h.buckets.assign(
        static_cast<size_t>(std::min<uint64_t>(
            histogram_buckets, std::max<uint64_t>(span, 1))),
        0);
    for (int64_t x : numeric_values[i]) ++h.buckets[h.BucketOf(x)];
  }
  return stats;
}

}  // namespace pascalr
