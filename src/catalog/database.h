// Database: the catalog of named relations, named enumeration types, and
// permanent component indexes (paper Example 3.1's enrindex).
//
// Permanent indexes are self-maintaining: each records the relation
// mod_count it was built at and is rebuilt lazily when the relation has
// changed since (the paper maintains them inside application code; a
// library must do it for the user).

#ifndef PASCALR_CATALOG_DATABASE_H_
#define PASCALR_CATALOG_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "catalog/relation_stats.h"
#include "index/index.h"
#include "storage/relation.h"
#include "value/type.h"

namespace pascalr {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Declares `TYPE name = (label, ...)`.
  Status RegisterEnum(std::shared_ptr<const EnumInfo> info);
  /// Returns nullptr if no enum type of this name exists.
  std::shared_ptr<const EnumInfo> FindEnum(const std::string& name) const;

  /// Declares `VAR name : RELATION <key> OF RECORD ... END`.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);
  Status DropRelation(const std::string& name);

  /// Lookup by name / id; nullptr when absent.
  Relation* FindRelation(const std::string& name) const;
  Relation* FindRelation(RelationId id) const;

  /// Routes a reference to its owning relation and dereferences it.
  Result<const Tuple*> Deref(const Ref& ref) const;

  /// Ensures a permanent index on `relation.component` exists and is fresh.
  /// `ordered` selects a B+tree (supports <, <=, >, >=) over a hash index.
  /// Requesting an ordered index where an unordered one exists (or vice
  /// versa) replaces it.
  Result<ComponentIndex*> EnsureIndex(const std::string& relation,
                                      const std::string& component,
                                      bool ordered);

  /// Returns the permanent index on `relation.component` if it exists AND
  /// is fresh; nullptr otherwise. Never builds.
  ComponentIndex* FindFreshIndex(const std::string& relation,
                                 const std::string& component) const;

  /// Declared permanent indexes, in catalog order. Used by ExportScript to
  /// emit `INDEX rel component [ORDERED];` declarations.
  struct IndexDescription {
    std::string relation;
    std::string component;
    bool ordered = false;
  };
  std::vector<IndexDescription> ListIndexes() const;

  /// ANALYZE: computes (or refreshes) catalog statistics for `relation` by
  /// one full scan. Statistics record the relation's mod_count and go
  /// stale — FindFreshStats returns nullptr — after any mutation.
  Result<const RelationStats*> Analyze(const std::string& relation);

  /// ANALYZE with no argument: refreshes statistics for every relation.
  Status AnalyzeAll();

  /// Returns the statistics for `relation` if they exist AND match the
  /// relation's current mod_count; nullptr otherwise. Never computes.
  const RelationStats* FindFreshStats(const std::string& relation) const;

  /// Monotonic counter bumped whenever catalog statistics change (ANALYZE
  /// recomputation, STATS seeding, relation drop). Together with per-
  /// relation mod_counts this keys the prepared-query plan cache: a plan
  /// chosen under one (epoch, mod_counts) snapshot is stale under any
  /// other.
  uint64_t stats_epoch() const { return stats_epoch_; }

  /// Installs externally supplied statistics (the STATS directive that
  /// ExportScript emits) as if ANALYZE had just run: they are stamped
  /// with the relation's current mod_count and stay fresh until the next
  /// mutation. `stats.columns` must match the schema's component count
  /// (column names are trusted to have been resolved by the caller).
  Status SeedStats(RelationStats stats);

  std::vector<std::string> RelationNames() const;

  /// Human-readable catalog summary.
  std::string DebugString() const;

 private:
  struct IndexEntry {
    std::unique_ptr<ComponentIndex> index;
    uint64_t built_at_mod = 0;
    size_t component_pos = 0;
    bool ordered = false;
  };

  static std::string IndexKey(const std::string& relation,
                              const std::string& component) {
    return relation + "." + component;
  }

  std::vector<std::unique_ptr<Relation>> relations_;  // index == RelationId
  std::map<std::string, RelationId> by_name_;
  std::map<std::string, std::shared_ptr<const EnumInfo>> enums_;
  std::map<std::string, IndexEntry> indexes_;
  std::map<std::string, RelationStats> stats_;
  uint64_t stats_epoch_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_CATALOG_DATABASE_H_
