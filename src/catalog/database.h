// Database: the catalog of named relations, named enumeration types, and
// permanent component indexes (paper Example 3.1's enrindex).
//
// Permanent indexes are self-maintaining: each records the relation
// mod_count it was built at and is rebuilt lazily when the relation has
// changed since (the paper maintains them inside application code; a
// library must do it for the user).
//
// Concurrent serving (src/concurrency/): one Database can serve many
// Sessions at once. EnableConcurrentServing() — done by SessionManager —
// flips the relations into versioned mode and activates:
//
//  - TakeSnapshot(): captures a consistent read point (db_version + one
//    published watermark and live count per relation) under commit_mu, so
//    readers never block behind writers and never observe a half-applied
//    statement. Returns null while serving is off — the legacy
//    single-threaded path pays nothing.
//  - BeginWriteStatement(): serialises writers on write_mu_ and installs
//    an ambient WriteBatch; the guard's commit publishes every touched
//    relation and bumps db_version in one atomic step.
//  - Compact()/MaybeCompact(): reclaim dead versions under the
//    SnapshotRegistry's exclusive quiesce; retired permanent indexes and
//    statistics (replaced while readers might still hold pointers) are
//    parked in graveyards and freed here too.
//  - shared_plans(): the process-wide prepared-plan cache — N sessions
//    preparing the same selection share one plan search.
//
// Lock order (outermost first): write_mu_ → registry.mu_ → commit_mu →
// catalog_mu_. Catalog reads take catalog_mu_ shared; snapshot readers
// resolve FindRelation through their snapshot and skip the catalog lock.

#ifndef PASCALR_CATALOG_DATABASE_H_
#define PASCALR_CATALOG_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/atomic_util.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "catalog/relation_stats.h"
#include "concurrency/plan_cache.h"
#include "concurrency/snapshot.h"
#include "index/index.h"
#include "obs/metrics.h"
#include "obs/stmt_stats.h"
#include "storage/relation.h"
#include "value/type.h"

namespace pascalr {

class Database {
 public:
  Database() { shared_plans_.AttachCounters(&concurrency_.counters); }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Declares `TYPE name = (label, ...)`.
  Status RegisterEnum(std::shared_ptr<const EnumInfo> info);
  /// Returns nullptr if no enum type of this name exists.
  std::shared_ptr<const EnumInfo> FindEnum(const std::string& name) const;

  /// Declares `VAR name : RELATION <key> OF RECORD ... END`.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);
  Status DropRelation(const std::string& name);

  /// Lookup by name / id; nullptr when absent. Snapshot-aware: under an
  /// ambient snapshot of this database, resolution goes through the
  /// snapshot's captured catalog — a relation dropped after capture stays
  /// readable, one created after capture is not yet visible.
  Relation* FindRelation(const std::string& name) const;
  Relation* FindRelation(RelationId id) const;

  /// Routes a reference to its owning relation and dereferences it.
  Result<const Tuple*> Deref(const Ref& ref) const;

  /// Ensures a permanent index on `relation.component` exists and is fresh.
  /// `ordered` selects a B+tree (supports <, <=, >, >=) over a hash index.
  /// Requesting an ordered index where an unordered one exists (or vice
  /// versa) replaces it.
  Result<ComponentIndex*> EnsureIndex(const std::string& relation,
                                      const std::string& component,
                                      bool ordered);

  /// Returns the permanent index on `relation.component` if it exists AND
  /// is fresh at the caller's watermark; nullptr otherwise. Never builds.
  ComponentIndex* FindFreshIndex(const std::string& relation,
                                 const std::string& component) const;

  /// Declared permanent indexes, in catalog order. Used by ExportScript to
  /// emit `INDEX rel component [ORDERED];` declarations.
  struct IndexDescription {
    std::string relation;
    std::string component;
    bool ordered = false;
  };
  std::vector<IndexDescription> ListIndexes() const;

  /// ANALYZE: computes (or refreshes) catalog statistics for `relation` by
  /// one full scan. Statistics record the relation's mod_count and go
  /// stale — FindFreshStats returns nullptr — after any mutation.
  Result<const RelationStats*> Analyze(const std::string& relation);

  /// ANALYZE with no argument: refreshes statistics for every relation.
  Status AnalyzeAll();

  /// Returns the statistics for `relation` if they exist AND match the
  /// relation's mod_count at the caller's watermark; nullptr otherwise.
  /// Never computes. The pointer stays valid until the next compaction
  /// (replaced statistics are parked in a graveyard, not freed).
  const RelationStats* FindFreshStats(const std::string& relation) const;

  /// Monotonic counter bumped whenever catalog statistics change (ANALYZE
  /// recomputation, STATS seeding, relation drop). Together with per-
  /// relation mod_counts this keys the prepared-query plan cache: a plan
  /// chosen under one (epoch, mod_counts) snapshot is stale under any
  /// other.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Installs externally supplied statistics (the STATS directive that
  /// ExportScript emits) as if ANALYZE had just run: they are stamped
  /// with the relation's current mod_count and stay fresh until the next
  /// mutation. `stats.columns` must match the schema's component count
  /// (column names are trusted to have been resolved by the caller).
  Status SeedStats(RelationStats stats);

  /// SeedStats without the stats-epoch bump. Reserved for the system
  /// relations (obs/system_relations.cc): their statistics change on
  /// every refresh, and bumping the epoch each time would invalidate
  /// every cached plan in the server. Plans over the views themselves
  /// still revalidate through the per-relation mod_count watermarks.
  Status SeedStatsQuiet(RelationStats stats);

  std::vector<std::string> RelationNames() const;

  /// Human-readable catalog summary.
  std::string DebugString() const;

  // ---- concurrent serving -------------------------------------------

  /// Flips every relation (current and future) into versioned serving
  /// mode. One-way; called by SessionManager's constructor.
  void EnableConcurrentServing();
  /// Relaxed: the one-way flip happens before any concurrent session
  /// exists (SessionManager's constructor), so no reader can race it.
  bool serving() const { return RelaxedLoad(concurrency_.serving); }

  /// The commit version: bumped once per committed write statement and
  /// once per catalog change while serving. Relaxed: ordered by commit_mu
  /// where it matters; bare reads are monitoring only.
  uint64_t db_version() const { return RelaxedLoad(concurrency_.db_version); }

  /// Captures a consistent read point and registers it with the
  /// SnapshotRegistry (so compaction waits for it). Returns null while
  /// serving is off: ScopedSnapshotInstall(nullptr) is a no-op and every
  /// read goes down the legacy path.
  SnapshotRef TakeSnapshot() const;

  /// The snapshot a read entry point should install: the ambient one when
  /// it is already ours (a nested entry point keeps its caller's read
  /// point instead of capturing twice), else a fresh TakeSnapshot().
  SnapshotRef SnapshotForRead() const;

  /// One write statement: holds the database write mutex and keeps an
  /// ambient WriteBatch installed, so relation mutators stamp versions and
  /// defer publication until the guard commits (explicitly or at scope
  /// exit). Member order gives the destructor the right sequence:
  /// uninstall the ambient batch, commit, release the mutex.
  class WriteStatementGuard {
   public:
    WriteStatementGuard() = default;
    WriteStatementGuard(WriteStatementGuard&&) = default;
    WriteStatementGuard& operator=(WriteStatementGuard&&) = default;

    /// Publishes and returns the commit version (idempotent; the stress
    /// test keys its serial-oracle log on this).
    uint64_t Commit();

   private:
    friend class Database;
    MovableMutexLock lock_;
    std::unique_ptr<WriteBatch> batch_;
    std::unique_ptr<ScopedWriteBatchInstall> install_;
  };
  WriteStatementGuard BeginWriteStatement();

  /// Blocking compaction: waits out every live snapshot (registry
  /// quiesce), reclaims all dead versions, folds deltas into bases, and
  /// frees the index/stats graveyards. Returns versions retired.
  size_t Compact();

  /// Opportunistic compaction for the write path: runs only if the write
  /// mutex and an empty registry are available *right now* (a thread
  /// holding a SnapshotRef can call this safely — it simply won't run).
  /// Triggers once the accumulated dead-version count crosses a threshold.
  bool MaybeCompact();

  ConcurrencyCounters::View ConcurrencyCountersView() const {
    return concurrency_.counters.Read();
  }

  SharedPlanCache& shared_plans() { return shared_plans_; }
  const SharedPlanCache& shared_plans() const { return shared_plans_; }

  // ---- self-observation (obs/) --------------------------------------
  // Server-wide: every session folds into these, and the sys$ system
  // relations (obs/system_relations.h) materialize them as queryable
  // catalog relations. Each is internally synchronized.

  /// Per-normalized-statement execution statistics (sys$statements).
  StmtStatsStore& stmt_stats() { return stmt_stats_; }
  const StmtStatsStore& stmt_stats() const { return stmt_stats_; }

  /// Server-wide named counters/gauges/latency histograms (sys$metrics,
  /// `.metrics` in the shell, the Prometheus exporter).
  MetricsRegistry& server_metrics() { return server_metrics_; }
  const MetricsRegistry& server_metrics() const { return server_metrics_; }

  /// Bounded ring of above-threshold queries (SET SLOWLOG <usec>).
  SlowQueryLog& slow_log() { return slow_log_; }
  const SlowQueryLog& slow_log() const { return slow_log_; }

  /// Live sessions with per-session tallies (sys$sessions).
  SessionRegistry& session_registry() { return session_registry_; }
  const SessionRegistry& session_registry() const { return session_registry_; }

 private:
  struct IndexEntry {
    std::unique_ptr<ComponentIndex> index;
    uint64_t built_at_mod = 0;
    size_t component_pos = 0;
    bool ordered = false;
  };

  static std::string IndexKey(const std::string& relation,
                              const std::string& component) {
    return relation + "." + component;
  }

  /// Accumulated dead versions that trigger MaybeCompact.
  static constexpr size_t kCompactionThreshold = 4096;

  /// Snapshot-aware id resolution shared by FindRelation overloads.
  const Snapshot* AmbientSnapshot() const;

  /// Compaction body: caller holds write_mu_ and the registry quiesce.
  size_t CompactAllLocked();

  mutable SharedMutex catalog_mu_;
  // index == RelationId
  std::vector<std::shared_ptr<Relation>> relations_ GUARDED_BY(catalog_mu_);
  std::map<std::string, RelationId> by_name_ GUARDED_BY(catalog_mu_);
  std::map<std::string, std::shared_ptr<const EnumInfo>> enums_
      GUARDED_BY(catalog_mu_);
  std::map<std::string, IndexEntry> indexes_ GUARDED_BY(catalog_mu_);
  std::map<std::string, std::shared_ptr<const RelationStats>> stats_
      GUARDED_BY(catalog_mu_);
  std::atomic<uint64_t> stats_epoch_{0};

  /// Replaced/dropped permanent indexes and statistics that an executing
  /// plan in another session may still reference. Freed at compaction
  /// (quiesce ⇒ no snapshot ⇒ no plan mid-execution).
  std::vector<std::unique_ptr<ComponentIndex>> retired_indexes_
      GUARDED_BY(catalog_mu_);
  std::vector<std::shared_ptr<const RelationStats>> retired_stats_
      GUARDED_BY(catalog_mu_);

  /// Serialises write statements; outermost lock of the order above.
  /// lint: mutex-protocol(guards the one-writer-statement-at-a-time
  /// discipline, not data members — the statement's effects live in the
  /// relations and publish under commit_mu; held across BeginWriteStatement
  /// ... guard.Commit() via MovableMutexLock, which scope-based analysis
  /// cannot follow)
  Mutex write_mu_;

  /// Shared SeedStats body; the quiet variant skips the epoch bump.
  Status SeedStatsImpl(RelationStats stats, bool bump_epoch);

  mutable ConcurrencyState concurrency_;
  SharedPlanCache shared_plans_;

  StmtStatsStore stmt_stats_;
  MetricsRegistry server_metrics_;
  SlowQueryLog slow_log_;
  SessionRegistry session_registry_;
};

}  // namespace pascalr

#endif  // PASCALR_CATALOG_DATABASE_H_
