// Morsel-driven parallel drain (SET PARALLEL <n>). One operator,
// MorselParallelIter, replaces an entire eligible conjunction chain:
// the driving structure's rows are split into fixed-size morsels, a
// WorkerPool drains each morsel through a private copy of the serial
// chain (scan → probe-joins/filters over SHARED prebuilt hash tables →
// extends → alignment project), and the consumer thread re-emits the
// per-morsel chunk lists in morsel-index order.
//
// Determinism contract: morsel boundaries partition the driving scan's
// row order, every worker chain applies exactly the operators the serial
// chain would in the same per-row order, and the ordered merge
// concatenates morsel outputs by index — so a parallel drain emits the
// bit-identical row sequence of the serial chain, at any worker count.
// Work counters are deterministic too: each worker accumulates into a
// private ExecStats, merged once into the query's stats at exhaustion
// (or early close); totals equal the serial chain's counters exactly,
// morsels_dispatched excepted (0 serially, = morsel count here).
//
// Eligibility is decided in compile.cc (eager collection, unprofiled,
// left-deep tree over prebuilt structures); everything ineligible keeps
// the serial chain, so PARALLEL never changes which plans exist — only
// how many threads drain one.

#ifndef PASCALR_PIPELINE_PARALLEL_H_
#define PASCALR_PIPELINE_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "concurrency/snapshot.h"
#include "concurrency/worker_pool.h"
#include "pipeline/iterators.h"

namespace pascalr {

/// One join step of the per-worker chain. `filter` selects the
/// membership lowering (covered leaf: FilterIter against `right`);
/// otherwise a ProbeJoinIter probing `table`, which the consumer thread
/// builds once before the workers spawn and all workers share read-only.
struct ParallelJoinStep {
  const RefRelation* right = nullptr;
  std::vector<int> left_key;
  std::vector<int> right_key;
  std::vector<int> right_extras;
  bool semi = false;
  bool filter = false;
  JoinHashTable table;  ///< built at Start(); unused in filter mode
};

/// The recipe every worker builds its private chain from. All pointers
/// reference collection-phase results owned by the cursor's RunState,
/// which outlives the drain.
struct ParallelChainSpec {
  const RefRelation* driving = nullptr;
  std::vector<ParallelJoinStep> joins;  ///< applied in order
  std::vector<const std::vector<Ref>*> extends;
  bool project = false;  ///< align onto `project_cols` after extends
  std::vector<int> project_positions;
  std::vector<std::string> project_cols;
  size_t batch_size = Chunk::kDefaultRows;
  size_t workers = 2;
};

/// lint: thread-compatible(the iterator object itself is only touched by
/// the consumer thread — Next/NextBatch/destruction; workers communicate
/// exclusively through the mu_-guarded merge state and the atomics
/// below, never through unguarded members)
class MorselParallelIter : public RefIterator {
 public:
  MorselParallelIter(ParallelChainSpec spec, ExecStats* stats);
  ~MorselParallelIter() override;

  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  /// First pull: builds the shared join tables, fixes the morsel grid,
  /// spawns the pool (under the parallel-drain trace span).
  Status Start();
  void WorkerBody(size_t worker);
  /// Joins the pool and folds the workers' ExecStats into the query's —
  /// exactly once, at exhaustion, error, or early close.
  void Finish();

  ParallelChainSpec spec_;
  ExecStats* stats_;
  size_t num_morsels_ = 0;
  size_t morsel_rows_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::unique_ptr<WorkerPool> pool_;

  /// Dispatch: workers claim morsel indices with fetch_add — ascending,
  /// no two workers the same morsel. stop_ is the early-close/error
  /// latch workers poll between chunks.
  std::atomic<size_t> next_morsel_{0};
  std::atomic<bool> stop_{false};

  Mutex mu_;
  CondVar cv_;
  /// Finished morsels parked until the consumer reaches their index.
  std::map<size_t, std::vector<Chunk>> ready_ GUARDED_BY(mu_);
  /// Next morsel index the consumer will emit. Workers holding a claim
  /// >= emit_pos_ + window wait — bounded in-flight buffering.
  size_t emit_pos_ GUARDED_BY(mu_) = 0;
  Status error_ GUARDED_BY(mu_);
  ExecStats worker_stats_ GUARDED_BY(mu_);

  // Consumer-side cursor over the morsel being emitted.
  std::vector<Chunk> current_;
  size_t current_pos_ = 0;
  // Row-at-a-time bridge state (Next on a parallel root).
  Chunk row_chunk_;
  size_t row_pos_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_PARALLEL_H_
