#include "pipeline/parallel.h"

#include <algorithm>
#include <utility>

#include "base/str_util.h"
#include "obs/span_names.h"
#include "obs/trace.h"

namespace pascalr {

namespace {

/// Smallest morsel worth a dispatch round-trip; below this the claim +
/// chain-build overhead dominates the drain itself.
constexpr size_t kMinMorselRows = 64;

/// Morsels per worker the grid aims for — enough slack that an uneven
/// morsel (a hot join key) rebalances onto idle workers, few enough
/// that dispatch overhead stays negligible.
constexpr size_t kMorselsPerWorker = 8;

/// Assembles one worker's private chain over morsel [begin, end) of the
/// driving structure — the serial chain's operators in the serial
/// chain's order, with join tables swapped for the shared prebuilt ones.
RefIteratorPtr BuildWorkerChain(const ParallelChainSpec& spec, size_t begin,
                                size_t end, ExecStats* stats) {
  RefIteratorPtr it = std::make_unique<ScanIter>(spec.driving, begin, end);
  for (const ParallelJoinStep& step : spec.joins) {
    if (step.filter) {
      it = std::make_unique<FilterIter>(std::move(it), step.right,
                                        step.left_key, stats);
    } else {
      it = std::make_unique<ProbeJoinIter>(
          std::move(it), step.right, &step.table, step.left_key,
          step.right_key, step.right_extras, step.semi, stats);
    }
  }
  for (const std::vector<Ref>* refs : spec.extends) {
    it = std::make_unique<ExtendIter>(std::move(it), refs, stats);
  }
  if (spec.project) {
    it = std::make_unique<ProjectIter>(std::move(it), spec.project_positions,
                                       spec.project_cols, /*dedup=*/false,
                                       stats, /*tracker=*/nullptr);
  }
  return it;
}

}  // namespace

MorselParallelIter::MorselParallelIter(ParallelChainSpec spec,
                                       ExecStats* stats)
    : spec_(std::move(spec)), stats_(stats) {}

MorselParallelIter::~MorselParallelIter() {
  // Early close (LIMIT-style cursor teardown, query error upstream):
  // raise the stop latch, wake window-waiters, join, and still merge the
  // partial worker counters — a closed drain must not lose work done.
  stop_.store(true);
  {
    MutexLock lock(mu_);
    cv_.NotifyAll();
  }
  Finish();
}

Status MorselParallelIter::Start() {
  TraceSpanGuard span(spans::kParallelDrain, stats_);
  const size_t n = spec_.driving->size();
  const size_t target = spec_.workers * kMorselsPerWorker;
  morsel_rows_ = std::max(kMinMorselRows, (n + target - 1) / target);
  num_morsels_ = (n + morsel_rows_ - 1) / morsel_rows_;
  // Shared join tables: built once here on the consumer thread — the
  // build is identical to the serial ProbeJoinIter::Prepare, so tables
  // iterate match chains in the same row order and the merged output
  // stays bit-identical to the serial drain.
  for (ParallelJoinStep& step : spec_.joins) {
    if (!step.filter && !step.left_key.empty()) {
      step.table = BuildJoinHashTable(*step.right, step.right_key);
    }
  }
  pool_ = std::make_unique<WorkerPool>(spec_.workers, CurrentSnapshotRef());
  pool_->Start([this](size_t w) { WorkerBody(w); });
  started_ = true;
  return Status::OK();
}

void MorselParallelIter::WorkerBody(size_t worker) {
  (void)worker;
  ExecStats local;
  while (!stop_.load()) {
    const size_t m = next_morsel_.fetch_add(1);
    if (m >= num_morsels_) break;
    {
      // Back-pressure: stay at most `window` morsels ahead of the
      // consumer. The claimant of the smallest unfinished morsel always
      // has m < emit_pos_ + window, so someone is always runnable.
      MutexLock lock(mu_);
      const size_t window = spec_.workers * 2 + 2;
      while (!stop_.load() && m >= emit_pos_ + window) cv_.Wait(mu_);
      if (stop_.load()) break;
    }
    ++local.morsels_dispatched;
    const size_t begin = m * morsel_rows_;
    const size_t end = std::min(begin + morsel_rows_, spec_.driving->size());
    RefIteratorPtr chain = BuildWorkerChain(spec_, begin, end, &local);
    std::vector<Chunk> chunks;
    bool failed = false;
    while (!stop_.load()) {
      Chunk chunk;
      chunk.capacity = spec_.batch_size;
      Result<bool> more = chain->NextBatch(&chunk);
      if (!more.ok()) {
        MutexLock lock(mu_);
        if (error_.ok()) error_ = more.status();
        stop_.store(true);
        cv_.NotifyAll();
        failed = true;
        break;
      }
      if (!more.value()) break;
      chunks.push_back(std::move(chunk));
    }
    if (failed || stop_.load()) break;
    {
      MutexLock lock(mu_);
      ready_[m] = std::move(chunks);
      cv_.NotifyAll();
    }
  }
  MutexLock lock(mu_);
  worker_stats_.Merge(local);
  cv_.NotifyAll();
}

void MorselParallelIter::Finish() {
  if (finished_) return;
  finished_ = true;
  if (pool_ != nullptr) pool_->Join();
  // Workers are joined: worker_stats_ is quiescent, but the annotation
  // contract still wants the lock.
  MutexLock lock(mu_);
  if (stats_ != nullptr) stats_->Merge(worker_stats_);
}

Result<bool> MorselParallelIter::NextBatch(Chunk* out) {
  if (!started_) PASCALR_RETURN_IF_ERROR(Start());
  while (true) {
    if (current_pos_ < current_.size()) {
      *out = std::move(current_[current_pos_++]);
      return true;
    }
    current_.clear();
    current_pos_ = 0;
    bool exhausted = false;
    Status failed;
    {
      MutexLock lock(mu_);
      while (true) {
        if (!error_.ok()) {
          // Join outside the lock scope: workers take mu_ for their
          // final stats merge.
          failed = error_;
          break;
        }
        if (emit_pos_ >= num_morsels_) {
          exhausted = true;
          break;
        }
        auto it = ready_.find(emit_pos_);
        if (it != ready_.end()) {
          current_ = std::move(it->second);
          ready_.erase(it);
          ++emit_pos_;
          // Window-waiting workers may now run one morsel further.
          cv_.NotifyAll();
          break;
        }
        cv_.Wait(mu_);
      }
    }
    if (!failed.ok()) {
      stop_.store(true);
      {
        MutexLock lock(mu_);
        cv_.NotifyAll();
      }
      Finish();
      return failed;
    }
    if (exhausted) {
      Finish();
      out->Reset(out->arity());
      return false;
    }
    // current_ may be empty (a morsel whose rows all filtered out):
    // loop and take the next morsel rather than signalling exhaustion.
  }
}

Result<bool> MorselParallelIter::Next(RefRow* out) {
  // Row bridge over the chunked merge, for callers on the row contract
  // (quantifier tails, bushy parents — not expected for eligible chains,
  // but the iterator contract requires it).
  while (row_pos_ >= row_chunk_.rows) {
    row_chunk_.capacity = spec_.batch_size;
    PASCALR_ASSIGN_OR_RETURN(bool more, NextBatch(&row_chunk_));
    if (!more) return false;
    row_pos_ = 0;
  }
  row_chunk_.RowAt(row_pos_++, out);
  return true;
}

}  // namespace pascalr
