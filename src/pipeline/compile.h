// Compiles a QueryPlan's combination phase into a Volcano-style iterator
// tree over the collection phase's reference structures (the pipelined
// combination subsystem). The compiled pipeline delivers the free-variable
// n-tuples of §3.3 one row per Next — the same row *set* the materializing
// ExecuteCombination produces, without materialising join intermediates.
//
// Per conjunction: the runtime join order (the optimizer's attached tree
// when it survives re-validation against actual structure sizes, greedy
// smallest-first otherwise) becomes a chain of ProbeJoinIters; purely
// existential variables run as semi-joins (EXISTS-style first-match
// probes) or skip their Cartesian extension entirely; remaining prefix
// variables are extended from the materialised ranges. The disjunct
// streams concatenate, then either feed the blocking quantifier tail
// (plans with a surviving ALL — division is inherently blocking) or a
// streaming dedup sink.
//
// The compiler consumes CollectionBuilders, not a finished collection.
// Under CollectionPolicy::kEager the cursor ran EnsureAll() before
// compiling, structures are real, and the lowering is exactly the
// pre-demand-driven one (runtime join-order re-validation included).
// Under kLazy nothing is built yet: leaves lower to demand-driven scans
// (streamed off the base relation when the structure supports per-element
// evaluation), probe sides populate per join key or at first use, ranges
// materialise behind Extend/guard/tail iterators — and the attached join
// tree is trusted as planned, since re-validating against actual sizes
// would force the very builds laziness defers.

#ifndef PASCALR_PIPELINE_COMPILE_H_
#define PASCALR_PIPELINE_COMPILE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "pipeline/iterators.h"
#include "pipeline/shape.h"

namespace pascalr {

class PipelineProfile;  // obs/profile.h

struct CompiledPipeline {
  RefIteratorPtr root;
  /// Output column layout (the free variables, prefix order).
  std::vector<std::string> columns;

  bool ok() const { return root != nullptr; }
};

/// How the lazy lowering populates one conjunction-input structure.
enum class LazyLeafMode : uint8_t {
  kStreamed,  ///< scanned straight off the base relation, never built
  kKeyed,     ///< populated per requested join key on probe
  kDeferred,  ///< materialised in full at first use
};

/// The population mode the lazy lowering will use for each leaf of
/// conjunction `conj` (indexed like plan.conj_inputs[conj]). Shares
/// CompileConjunction's lowering walk — same tree choice, same join-key
/// computation, same semi-join column dropping — so EXPLAIN and the
/// cost model describe the modes the executor actually runs. `shape`
/// is the caller's AnalyzePipelineShape(plan) (callers always have one
/// in hand; recomputing it per conjunction is the expensive part). Only
/// meaningful for plans with CollectionPolicy::kLazy.
std::vector<LazyLeafMode> LazyConjunctionLeafModes(const QueryPlan& plan,
                                                   size_t conj,
                                                   const PipelineShape& shape);

/// Builds the iterator tree for `plan` over the collection builders.
/// `stats` receives the per-operator work counters as rows are pulled;
/// blocking buffers register with `tracker`. Both must outlive the
/// pipeline, as must `plan` and `builders` (the iterators populate and
/// probe the structures in place).
///
/// `profile` (optional, EXPLAIN ANALYZE) registers one OpNode per emitted
/// operator and wraps each in a counting/timing ProfiledIter; it must
/// outlive the pipeline. When null — the default for every normal query —
/// no wrapper is inserted anywhere, so the compiled tree is bit-identical
/// to the unprofiled build and execution carries zero instrumentation
/// overhead.
Result<CompiledPipeline> CompilePipeline(const QueryPlan& plan,
                                         CollectionBuilders* builders,
                                         ExecStats* stats,
                                         PeakTracker* tracker,
                                         PipelineProfile* profile = nullptr);

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_COMPILE_H_
