// Compiles a QueryPlan's combination phase into a Volcano-style iterator
// tree over the collection phase's reference structures (the pipelined
// combination subsystem). The compiled pipeline delivers the free-variable
// n-tuples of §3.3 one row per Next — the same row *set* the materializing
// ExecuteCombination produces, without materialising join intermediates.
//
// Per conjunction: the runtime join order (the optimizer's attached tree
// when it survives re-validation against actual structure sizes, greedy
// smallest-first otherwise) becomes a chain of ProbeJoinIters; purely
// existential variables run as semi-joins (EXISTS-style first-match
// probes) or skip their Cartesian extension entirely; remaining prefix
// variables are extended from the materialised ranges. The disjunct
// streams concatenate, then either feed the blocking quantifier tail
// (plans with a surviving ALL — division is inherently blocking) or a
// streaming dedup sink.

#ifndef PASCALR_PIPELINE_COMPILE_H_
#define PASCALR_PIPELINE_COMPILE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "pipeline/iterators.h"
#include "pipeline/shape.h"

namespace pascalr {

struct CompiledPipeline {
  RefIteratorPtr root;
  /// Output column layout (the free variables, prefix order).
  std::vector<std::string> columns;

  bool ok() const { return root != nullptr; }
};

/// Builds the iterator tree for `plan` over the collection result.
/// `stats` receives the per-operator work counters as rows are pulled;
/// blocking buffers register with `tracker`. Both must outlive the
/// pipeline, as must `plan` and `coll` (the iterators probe the
/// structures in place).
Result<CompiledPipeline> CompilePipeline(const QueryPlan& plan,
                                         const CollectionResult& coll,
                                         ExecStats* stats,
                                         PeakTracker* tracker);

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_COMPILE_H_
