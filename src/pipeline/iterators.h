// Volcano-style pull iterators over reference structures — the streamed
// combination phase (paper §3.3 step 2, evaluated tuple-at-a-time in the
// classic pipelined model surveyed by arXiv:0903.4305). Each operator
// produces one RefRow per Next — or, on the vectorized path, one
// column-major Chunk of ~batch-size rows per NextBatch (see chunk.h);
// the cursor drives the whole tree either way, so an early Close skips
// all unperformed join work. Both contracts coexist on every operator:
// NextBatch has a row-bridging default, so batched plans run unchanged
// while operators are vectorized one by one, and `SET BATCH 1;` recovers
// the exact row-at-a-time execution for bit-identity oracles.
//
// Under the demand-driven collection policy (CollectionPolicy::kLazy) the
// leaves additionally pull the *collection* phase on demand: scans and
// probe builds receive a CollectionBuilders handle instead of a finished
// structure and populate it behind Next — fully at first use, per join
// key, or streaming the base relation without materialising at all. An
// early Close then also skips collection work, not just join work.
//
// Operator inventory:
//   ScanIter        structure scan (a collection-phase RefRelation; with
//                   a builders handle, EnsureStructure at the first Next)
//   BaseScanIter    demand-driven single-producer scan: streams the base
//                   relation element-at-a-time through the structure's
//                   producers (gates, restriction, index probes) without
//                   ever materialising the structure — collection mode (c)
//   ProbeJoinIter   hash/nested-loop join: streams the left child, probes
//                   an index over the right side; the right side is a
//                   structure (zero-copy), a builders handle (lazy:
//                   keyed-partial per-join-key population when the
//                   structure supports it, full build at first probe
//                   otherwise), or a drained subtree (bushy trees — a
//                   genuine blocking build, peak-counted). A semi-join
//                   flag stops at the first match and drops the right
//                   side's purely-existential columns.
//   ExtendIter      Cartesian extension with a variable's materialised
//                   range (§3.3's n-tuple invariant); with a builders
//                   handle the range materialises at the first Next
//   RangeGuardIter  annihilates the stream when an (absent, purely
//                   existential) variable's range is empty — the lazy
//                   form of the compile-time empty-range check
//   FilterIter      residual predicate over the stream (reference-level
//                   column comparisons, or membership in a structure
//                   every column of which the stream already binds).
//                   compile.cc emits the membership form for covered
//                   join-tree leaves — a structure that contributes no
//                   new column is a predicate that outlived its
//                   collection gate, not a join. The vectorized
//                   selection-vector reference example.
//   ProjectIter     column drop/reorder; with dedup on, the sink that
//                   suppresses duplicates (seen rows are peak-counted)
//   ConcatIter      union of the disjunct streams (children share one
//                   column layout, so union is concatenation)
//   QuantifierTailIter  blocking tail for universal quantification:
//                   buffers the stream (dedup via set semantics), runs
//                   division / projection right-to-left, streams out
//   UnitIter / EmptyIter  the arity-0 TRUE row / the empty stream
//
// Memory discipline: streaming operators hold O(1) rows plus index maps
// of row *indices* over already-materialised structures; only blocking
// buffers (dedup sinks, division input, bushy builds) register rows with
// the PeakTracker. That is what keeps the pipelined
// ExecStats::peak_intermediate_rows at or below the materializing path's.

#ifndef PASCALR_PIPELINE_ITERATORS_H_
#define PASCALR_PIPELINE_ITERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "pipeline/chunk.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

class RefIterator {
 public:
  virtual ~RefIterator() = default;
  /// Produces the next row into `*out` (arity = the operator's column
  /// layout). Returns false when the stream is exhausted.
  virtual Result<bool> Next(RefRow* out) = 0;
  /// Produces up to `out->capacity` rows into `*out` (overwritten
  /// completely). Returns false only on exhaustion with zero rows; a
  /// short chunk does not signal exhaustion. The base implementation
  /// bridges Next() row-at-a-time — the adapter that keeps
  /// not-yet-vectorized operators (QuantifierTailIter's stream-out,
  /// BaseScanIter, lazy keyed probes) working inside batched plans;
  /// vectorized operators override it with tight column loops.
  virtual Result<bool> NextBatch(Chunk* out);
};

using RefIteratorPtr = std::unique_ptr<RefIterator>;

class EmptyIter : public RefIterator {
 public:
  Result<bool> Next(RefRow*) override { return false; }
};

/// The arity-0 relation containing the empty row: TRUE (a conjunction
/// with no combination inputs).
class UnitIter : public RefIterator {
 public:
  Result<bool> Next(RefRow* out) override;

 private:
  bool done_ = false;
};

class ScanIter : public RefIterator {
 public:
  explicit ScanIter(const RefRelation* rel) : rel_(rel) {}
  /// Morsel form: scans only rows [begin, end) — the parallel drain
  /// hands each worker one of these over the shared driving structure.
  ScanIter(const RefRelation* rel, size_t begin, size_t end)
      : rel_(rel), pos_(begin), end_(end) {}
  /// Demand-driven: EnsureStructure(structure_id) at the first Next, then
  /// scan the materialised rows.
  ScanIter(CollectionBuilders* builders, size_t structure_id)
      : builders_(builders), structure_id_(structure_id) {}
  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  Status Ensure();

  const RefRelation* rel_ = nullptr;
  CollectionBuilders* builders_ = nullptr;
  size_t structure_id_ = 0;
  size_t pos_ = 0;
  size_t end_ = static_cast<size_t>(-1);  ///< exclusive; clamped to size
};

/// Collection mode (c): streams the structure's base relation element at
/// a time through its producers — the structure itself never exists.
/// Requires CollectionBuilders::KeyedColumn(structure_id) >= 0 (single
/// scanned variable). Emits the same row set a materialised scan would,
/// in the same (slot) order.
class BaseScanIter : public RefIterator {
 public:
  BaseScanIter(CollectionBuilders* builders, size_t structure_id)
      : builders_(builders), structure_id_(structure_id) {}
  Result<bool> Next(RefRow* out) override;

 private:
  CollectionBuilders* builders_;
  size_t structure_id_;
  bool prepared_ = false;
  std::vector<Ref> refs_;        ///< live base-relation refs, slot order
  size_t ref_pos_ = 0;
  std::vector<RefRow> pending_;  ///< rows of the current element
  size_t pending_pos_ = 0;
};

/// Join-key hash index over a structure: key hash -> row indices. Built
/// once and shared read-only across the parallel drain's worker chains
/// (each worker would otherwise rebuild an identical table per morsel).
struct JoinHashTable {
  std::unordered_map<uint64_t, std::vector<size_t>> map;
};

/// Builds the join-key index over `rel` exactly as ProbeJoinIter's
/// first-Next build would — row indices appended in scan order, so a
/// shared table produces match chains in the identical order. The
/// parallel drain prebuilds these on the consumer thread.
JoinHashTable BuildJoinHashTable(const RefRelation& rel,
                                 const std::vector<int>& key);

/// Streaming join. Probes an index (join-key -> row indices) over the
/// right side, built lazily at the first Next. With an empty key the join
/// degenerates to the nested-loop Cartesian step. Output layout: left
/// columns, then the right side's extra columns (none under semi).
class ProbeJoinIter : public RefIterator {
 public:
  /// Right side is an existing structure: the index stores row indices
  /// into it — no row copies, nothing peak-counted.
  ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                std::vector<int> left_key, std::vector<int> right_key,
                std::vector<int> right_extras, bool semi, ExecStats* stats);

  /// Right side is an unbuilt structure (lazy collection). The lowering
  /// (PlanConjunctionLowering) already decided whether keyed-partial
  /// population applies: `keyed_probe_pos` >= 0 names the left column
  /// whose ref keys each per-join-key demand, -1 forces a full
  /// on-demand build at the first probe.
  ProbeJoinIter(RefIteratorPtr left, CollectionBuilders* builders,
                size_t right_structure, std::vector<int> left_key,
                std::vector<int> right_key, std::vector<int> right_extras,
                bool semi, ExecStats* stats, int keyed_probe_pos);

  /// Right side is a subtree (bushy trees): drained into an owned buffer
  /// at the first Next — a blocking build registered with `tracker`.
  ProbeJoinIter(RefIteratorPtr left, RefIteratorPtr right_source,
                std::vector<std::string> right_columns,
                std::vector<int> left_key, std::vector<int> right_key,
                std::vector<int> right_extras, bool semi, ExecStats* stats,
                PeakTracker* tracker);

  /// Worker-chain form: right side is an existing structure and the
  /// join-key index was prebuilt (shared, read-only) by the parallel
  /// drain — Prepare skips the build entirely.
  ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                const JoinHashTable* shared, std::vector<int> left_key,
                std::vector<int> right_key, std::vector<int> right_extras,
                bool semi, ExecStats* stats);

  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  Status Prepare();
  bool Emit(const RefRow& right_row, RefRow* out);
  /// Appends left row `l` of `left_chunk_` (plus `right_row`'s extras
  /// unless semi) to `out` — the batched Emit.
  void EmitBatch(size_t l, const RefRow* right_row, Chunk* out);

  RefIteratorPtr left_;
  const RefRelation* right_ = nullptr;
  RefIteratorPtr right_source_;  ///< non-null until drained
  RefRelation right_buf_;
  CollectionBuilders* builders_ = nullptr;  ///< lazy right side
  size_t right_structure_ = 0;
  std::vector<int> left_key_;
  std::vector<int> right_key_;
  std::vector<int> right_extras_;
  bool semi_;
  ExecStats* stats_;
  PeakTracker* tracker_ = nullptr;

  bool prepared_ = false;
  bool keyed_mode_ = false;  ///< per-join-key population of the right side
  int key_probe_pos_ = -1;   ///< left column probed in keyed mode (-1: off)
  JoinHashTable table_;
  const JoinHashTable* shared_table_ = nullptr;  ///< prebuilt (parallel)
  RefRow left_row_;
  bool have_left_ = false;
  const std::vector<size_t>* matches_ = nullptr;  ///< keyed probe chain
  const std::vector<RefRow>* keyed_rows_ = nullptr;  ///< keyed-partial rows
  size_t match_pos_ = 0;  ///< position in chain (keyed) or right rows (cross)
  Chunk left_chunk_;      ///< batched path: current left batch
  size_t left_pos_ = 0;   ///< next unconsumed row of left_chunk_
};

/// Cartesian extension with a materialised range: each child row is
/// emitted once per ref (the product step of §3.3's n-tuple invariant).
/// With a builders handle, the range materialises at the first Next.
class ExtendIter : public RefIterator {
 public:
  ExtendIter(RefIteratorPtr child, const std::vector<Ref>* refs,
             ExecStats* stats)
      : child_(std::move(child)), refs_(refs), stats_(stats) {}
  ExtendIter(RefIteratorPtr child, CollectionBuilders* builders,
             std::string var, ExecStats* stats)
      : child_(std::move(child)),
        builders_(builders),
        var_(std::move(var)),
        stats_(stats) {}
  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  Status EnsureRefs();

  RefIteratorPtr child_;
  const std::vector<Ref>* refs_ = nullptr;
  CollectionBuilders* builders_ = nullptr;
  std::string var_;
  ExecStats* stats_;
  RefRow row_;
  size_t pos_ = 0;
  bool have_ = false;
  Chunk child_chunk_;     ///< batched path: current child batch
  size_t child_pos_ = 0;  ///< row of child_chunk_ being extended
};

/// Annihilates the stream when `var`'s range is empty, passing rows
/// through unchanged otherwise. The demand-driven form of the semantics a
/// purely existential variable absent from every structure imposes: a
/// non-empty range is the whole existence proof, an empty one zeroes the
/// conjunct (exactly like the materializing path's product with an empty
/// range). The range materialises at the first Next.
class RangeGuardIter : public RefIterator {
 public:
  RangeGuardIter(RefIteratorPtr child, CollectionBuilders* builders,
                 std::string var)
      : child_(std::move(child)), builders_(builders), var_(std::move(var)) {}
  Result<bool> Next(RefRow* out) override;
  /// Forwards the child's batches once the guard passes, so the guard
  /// never demotes a vectorized subtree to the row bridge.
  Result<bool> NextBatch(Chunk* out) override;

 private:
  Status Check();

  RefIteratorPtr child_;
  CollectionBuilders* builders_;
  std::string var_;
  bool checked_ = false;
  bool empty_ = false;
};

/// Residual predicate over the stream, in one of two forms:
///
///   pair mode        keeps rows whose columns at `left_pos` /
///                    `right_pos` compare equal (resp. unequal)
///   membership mode  keeps rows whose columns at `key_pos` form a row
///                    of `*member_of` — a join structure ALL of whose
///                    columns the stream already binds is exactly a
///                    residual predicate that outlived its collection
///                    gate, and compile.cc lowers such covered leaves
///                    here instead of to a degenerate probe-join
///
/// NextBatch is the pipeline's vectorized reference example: evaluate
/// the predicate over the child chunk into a SelectionVector, then
/// gather the survivors column-by-column. Each evaluation counts one
/// ExecStats::comparisons.
class FilterIter : public RefIterator {
 public:
  FilterIter(RefIteratorPtr child, int left_pos, int right_pos, bool equal,
             ExecStats* stats)
      : child_(std::move(child)),
        left_pos_(left_pos),
        right_pos_(right_pos),
        equal_(equal),
        stats_(stats) {}
  /// Membership mode: `key_pos[i]` is the stream column matched against
  /// `member_of`'s column i (the full structure row, by construction of
  /// the covered-leaf lowering).
  FilterIter(RefIteratorPtr child, const RefRelation* member_of,
             std::vector<int> key_pos, ExecStats* stats)
      : child_(std::move(child)),
        member_of_(member_of),
        key_pos_(std::move(key_pos)),
        stats_(stats) {}
  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  bool Keeps(const Chunk& chunk, size_t row);

  RefIteratorPtr child_;
  int left_pos_ = -1;
  int right_pos_ = -1;
  bool equal_ = true;
  const RefRelation* member_of_ = nullptr;
  std::vector<int> key_pos_;
  ExecStats* stats_;
  RefRow key_;                   ///< scratch for membership probes
  std::vector<uint64_t> hashes_; ///< scratch for bulk key hashing
  Chunk child_chunk_;
  SelectionVector sel_;
};

/// Column drop/reorder (`positions[i]` = child column of output column
/// i). With `dedup`, suppresses rows already emitted — the pipeline's
/// sink operator; the seen-set rows are registered with `tracker`.
class ProjectIter : public RefIterator {
 public:
  ProjectIter(RefIteratorPtr child, std::vector<int> positions,
              std::vector<std::string> columns, bool dedup, ExecStats* stats,
              PeakTracker* tracker);
  Result<bool> Next(RefRow* out) override;
  /// Non-dedup: one child chunk in, its columns gathered, one chunk out.
  /// Dedup (the sink): accumulates child chunks until the output chunk
  /// is full, so chunk boundaries at the cursor — and the
  /// batches_emitted counter — depend only on the result cardinality and
  /// batch size, not on upstream (e.g. per-morsel) chunking.
  Result<bool> NextBatch(Chunk* out) override;

 private:
  RefIteratorPtr child_;
  std::vector<int> positions_;
  bool dedup_;
  RefRelation seen_;
  ExecStats* stats_;
  PeakTracker* tracker_;
  Chunk child_chunk_;
  size_t child_pos_ = 0;  ///< dedup path: next unconsumed child row
  bool child_done_ = false;
  RefRow scratch_;
};

/// Union of the disjunct streams: children are drained in order. All
/// children share one column layout by construction, so no realignment
/// (and no work counted) — duplicates fall to the sink above.
class ConcatIter : public RefIterator {
 public:
  explicit ConcatIter(std::vector<RefIteratorPtr> children)
      : children_(std::move(children)) {}
  Result<bool> Next(RefRow* out) override;
  Result<bool> NextBatch(Chunk* out) override;

 private:
  std::vector<RefIteratorPtr> children_;
  size_t current_ = 0;
};

/// Blocking tail for plans with a surviving universal quantifier: drains
/// the child stream into a set-semantics buffer (the division input the
/// materializing path would have built — identical by construction), then
/// evaluates the tail quantifiers right-to-left (projection for SOME,
/// relational division for ALL), projects onto the free variables, and
/// streams the result. Buffered rows are registered with the tracker.
/// Divisor ranges come from the builders, materialised on demand (a
/// no-op under the eager policy).
class QuantifierTailIter : public RefIterator {
 public:
  QuantifierTailIter(RefIteratorPtr child,
                     std::vector<QuantifiedVar> tail,
                     std::vector<std::string> columns,
                     std::vector<std::string> free_names,
                     CollectionBuilders* builders,
                     DivisionAlgorithm division, ExecStats* stats,
                     PeakTracker* tracker);
  Result<bool> Next(RefRow* out) override;
  /// Streams the buffered result in chunks (the blocking tail itself —
  /// division, projections — is not vectorized; the child stream is
  /// drained through NextBatch so a vectorized subtree stays batched).
  Result<bool> NextBatch(Chunk* out) override;

 private:
  Status Materialize();

  RefIteratorPtr child_;
  std::vector<QuantifiedVar> tail_;
  std::vector<std::string> columns_;
  std::vector<std::string> free_names_;
  CollectionBuilders* builders_;
  DivisionAlgorithm division_;
  ExecStats* stats_;
  PeakTracker* tracker_;

  bool materialized_ = false;
  RefRelation result_;
  size_t pos_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_ITERATORS_H_
