// Volcano-style pull iterators over reference structures — the streamed
// combination phase (paper §3.3 step 2, evaluated tuple-at-a-time in the
// classic pipelined model surveyed by arXiv:0903.4305). Each operator
// produces one RefRow per Next; the cursor's Next drives the whole tree,
// so an early Close skips all unperformed join work.
//
// Operator inventory:
//   ScanIter        structure scan (a collection-phase RefRelation)
//   ProbeJoinIter   hash/nested-loop join: streams the left child, probes
//                   an index over the right side; the right side is a
//                   structure (zero-copy) or a drained subtree (bushy
//                   trees — a genuine blocking build, peak-counted). A
//                   semi-join flag stops at the first match and drops the
//                   right side's purely-existential columns.
//   ExtendIter      Cartesian extension with a variable's materialised
//                   range (§3.3's n-tuple invariant)
//   FilterIter      residual predicate over the stream (reference-level
//                   column comparisons). Not yet emitted by compile.cc —
//                   every current predicate is realised as a collection
//                   gate or a join structure — kept (unit-tested) as the
//                   seam for predicates that outlive those forms
//   ProjectIter     column drop/reorder; with dedup on, the sink that
//                   suppresses duplicates (seen rows are peak-counted)
//   ConcatIter      union of the disjunct streams (children share one
//                   column layout, so union is concatenation)
//   QuantifierTailIter  blocking tail for universal quantification:
//                   buffers the stream (dedup via set semantics), runs
//                   division / projection right-to-left, streams out
//   UnitIter / EmptyIter  the arity-0 TRUE row / the empty stream
//
// Memory discipline: streaming operators hold O(1) rows plus index maps
// of row *indices* over already-materialised structures; only blocking
// buffers (dedup sinks, division input, bushy builds) register rows with
// the PeakTracker. That is what keeps the pipelined
// ExecStats::peak_intermediate_rows at or below the materializing path's.

#ifndef PASCALR_PIPELINE_ITERATORS_H_
#define PASCALR_PIPELINE_ITERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

class RefIterator {
 public:
  virtual ~RefIterator() = default;
  /// Produces the next row into `*out` (arity = the operator's column
  /// layout). Returns false when the stream is exhausted.
  virtual Result<bool> Next(RefRow* out) = 0;
};

using RefIteratorPtr = std::unique_ptr<RefIterator>;

class EmptyIter : public RefIterator {
 public:
  Result<bool> Next(RefRow*) override { return false; }
};

/// The arity-0 relation containing the empty row: TRUE (a conjunction
/// with no combination inputs).
class UnitIter : public RefIterator {
 public:
  Result<bool> Next(RefRow* out) override;

 private:
  bool done_ = false;
};

class ScanIter : public RefIterator {
 public:
  explicit ScanIter(const RefRelation* rel) : rel_(rel) {}
  Result<bool> Next(RefRow* out) override;

 private:
  const RefRelation* rel_;
  size_t pos_ = 0;
};

/// Streaming join. Probes an index (join-key -> row indices) over the
/// right side, built lazily at the first Next. With an empty key the join
/// degenerates to the nested-loop Cartesian step. Output layout: left
/// columns, then the right side's extra columns (none under semi).
class ProbeJoinIter : public RefIterator {
 public:
  /// Right side is an existing structure: the index stores row indices
  /// into it — no row copies, nothing peak-counted.
  ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                std::vector<int> left_key, std::vector<int> right_key,
                std::vector<int> right_extras, bool semi, ExecStats* stats);

  /// Right side is a subtree (bushy trees): drained into an owned buffer
  /// at the first Next — a blocking build registered with `tracker`.
  ProbeJoinIter(RefIteratorPtr left, RefIteratorPtr right_source,
                std::vector<std::string> right_columns,
                std::vector<int> left_key, std::vector<int> right_key,
                std::vector<int> right_extras, bool semi, ExecStats* stats,
                PeakTracker* tracker);

  Result<bool> Next(RefRow* out) override;

 private:
  Status Prepare();
  bool Emit(const RefRow& right_row, RefRow* out);

  RefIteratorPtr left_;
  const RefRelation* right_ = nullptr;
  RefIteratorPtr right_source_;  ///< non-null until drained
  RefRelation right_buf_;
  std::vector<int> left_key_;
  std::vector<int> right_key_;
  std::vector<int> right_extras_;
  bool semi_;
  ExecStats* stats_;
  PeakTracker* tracker_ = nullptr;

  bool prepared_ = false;
  std::unordered_map<uint64_t, std::vector<size_t>> table_;
  RefRow left_row_;
  bool have_left_ = false;
  const std::vector<size_t>* matches_ = nullptr;  ///< keyed probe chain
  size_t match_pos_ = 0;  ///< position in chain (keyed) or right rows (cross)
};

/// Cartesian extension with a materialised range: each child row is
/// emitted once per ref (the product step of §3.3's n-tuple invariant).
class ExtendIter : public RefIterator {
 public:
  ExtendIter(RefIteratorPtr child, const std::vector<Ref>* refs,
             ExecStats* stats)
      : child_(std::move(child)), refs_(refs), stats_(stats) {}
  Result<bool> Next(RefRow* out) override;

 private:
  RefIteratorPtr child_;
  const std::vector<Ref>* refs_;
  ExecStats* stats_;
  RefRow row_;
  size_t pos_ = 0;
  bool have_ = false;
};

/// Residual predicate over the stream: keeps rows whose columns at
/// `left_pos` / `right_pos` compare equal (resp. unequal). The seam for
/// predicates that would survive into the combination phase without a
/// supporting structure; today every predicate is realised as a
/// collection gate or join structure, so compile.cc does not emit this
/// operator yet (unit tests keep it honest).
class FilterIter : public RefIterator {
 public:
  FilterIter(RefIteratorPtr child, int left_pos, int right_pos, bool equal,
             ExecStats* stats)
      : child_(std::move(child)),
        left_pos_(left_pos),
        right_pos_(right_pos),
        equal_(equal),
        stats_(stats) {}
  Result<bool> Next(RefRow* out) override;

 private:
  RefIteratorPtr child_;
  int left_pos_;
  int right_pos_;
  bool equal_;
  ExecStats* stats_;
};

/// Column drop/reorder (`positions[i]` = child column of output column
/// i). With `dedup`, suppresses rows already emitted — the pipeline's
/// sink operator; the seen-set rows are registered with `tracker`.
class ProjectIter : public RefIterator {
 public:
  ProjectIter(RefIteratorPtr child, std::vector<int> positions,
              std::vector<std::string> columns, bool dedup, ExecStats* stats,
              PeakTracker* tracker);
  Result<bool> Next(RefRow* out) override;

 private:
  RefIteratorPtr child_;
  std::vector<int> positions_;
  bool dedup_;
  RefRelation seen_;
  ExecStats* stats_;
  PeakTracker* tracker_;
};

/// Union of the disjunct streams: children are drained in order. All
/// children share one column layout by construction, so no realignment
/// (and no work counted) — duplicates fall to the sink above.
class ConcatIter : public RefIterator {
 public:
  explicit ConcatIter(std::vector<RefIteratorPtr> children)
      : children_(std::move(children)) {}
  Result<bool> Next(RefRow* out) override;

 private:
  std::vector<RefIteratorPtr> children_;
  size_t current_ = 0;
};

/// Blocking tail for plans with a surviving universal quantifier: drains
/// the child stream into a set-semantics buffer (the division input the
/// materializing path would have built — identical by construction), then
/// evaluates the tail quantifiers right-to-left (projection for SOME,
/// relational division for ALL), projects onto the free variables, and
/// streams the result. Buffered rows are registered with the tracker.
class QuantifierTailIter : public RefIterator {
 public:
  QuantifierTailIter(RefIteratorPtr child,
                     std::vector<QuantifiedVar> tail,
                     std::vector<std::string> columns,
                     std::vector<std::string> free_names,
                     const std::map<std::string, std::vector<Ref>>* range_refs,
                     DivisionAlgorithm division, ExecStats* stats,
                     PeakTracker* tracker);
  Result<bool> Next(RefRow* out) override;

 private:
  Status Materialize();

  RefIteratorPtr child_;
  std::vector<QuantifiedVar> tail_;
  std::vector<std::string> columns_;
  std::vector<std::string> free_names_;
  const std::map<std::string, std::vector<Ref>>* range_refs_;
  DivisionAlgorithm division_;
  ExecStats* stats_;
  PeakTracker* tracker_;

  bool materialized_ = false;
  RefRelation result_;
  size_t pos_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_ITERATORS_H_
