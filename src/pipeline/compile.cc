#include "pipeline/compile.h"

#include <algorithm>

#include "base/str_util.h"
#include "exec/combination.h"
#include "obs/profile.h"
#include "pipeline/parallel.h"

namespace pascalr {

namespace {

/// Registers `iter` as a profile node and wraps it in a ProfiledIter;
/// with no profile (every normal query) returns `iter` untouched, so the
/// unprofiled tree is bit-identical to the pre-profiling build.
/// `est_rows` < 0 marks operators the planner attaches no estimate to.
/// `*node_out` receives the profile node id (-1 unprofiled) for use as a
/// later wrap's child.
RefIteratorPtr ProfileWrap(PipelineProfile* profile, RefIteratorPtr iter,
                           std::string label, double est_rows,
                           std::vector<int> children, int* node_out) {
  if (profile == nullptr) {
    if (node_out != nullptr) *node_out = -1;
    return iter;
  }
  children.erase(std::remove(children.begin(), children.end(), -1),
                 children.end());
  int id = profile->Add(std::move(label), est_rows, std::move(children));
  if (node_out != nullptr) *node_out = id;
  return std::make_unique<ProfiledIter>(std::move(iter), profile->prof(id));
}

int IndexOf(const std::vector<std::string>& cols, const std::string& name) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Left-deep chain over the inputs in declaration order — the lazy
/// fallback when no optimizer tree is attached: actual structure sizes
/// are unknown by design (nothing is built yet), so there is no signal
/// for the greedy smallest-first order to rank on.
JoinTree LeftDeepChain(size_t num_inputs) {
  JoinTree tree;
  tree.source = JoinOrderSource::kGreedy;
  JoinTreeNode leaf;
  leaf.leaf = true;
  leaf.input = 0;
  tree.nodes.push_back(leaf);
  int root = 0;
  for (size_t i = 1; i < num_inputs; ++i) {
    JoinTreeNode next_leaf;
    next_leaf.leaf = true;
    next_leaf.input = i;
    tree.nodes.push_back(next_leaf);
    JoinTreeNode join;
    join.left = root;
    join.right = static_cast<int>(tree.nodes.size()) - 1;
    tree.nodes.push_back(join);
    root = static_cast<int>(tree.nodes.size()) - 1;
  }
  return tree;
}

/// The lazy policy's join-tree choice: the optimizer's attached tree,
/// trusted as planned (re-validating against actual structure sizes
/// would force the very builds laziness defers), else a left-deep chain.
JoinTree LazyJoinTree(const QueryPlan& plan, size_t conj, size_t num_inputs) {
  if (conj < plan.join_trees.size() &&
      plan.join_trees[conj].Matches(num_inputs)) {
    return plan.join_trees[conj];
  }
  return LeftDeepChain(num_inputs);
}

/// One tree node's lowering decisions (keys, output columns, keyed-probe
/// position). Leaves carry only `cols`.
struct NodePlan {
  std::vector<int> left_key;
  std::vector<int> right_key;
  std::vector<int> right_extras;
  std::vector<std::string> cols;  ///< the node's output column layout
  /// Right-leaf joins only: the left column whose ref keys the lazy
  /// per-join-key population of the right structure, or -1 when keyed
  /// population does not apply (capability column not in the probe key).
  int keyed_probe_pos = -1;
  /// Covered right leaf under eager collection: every right column is
  /// already bound upstream (right_extras empty), so the "join" is a
  /// residual predicate — lowered to FilterIter membership probes
  /// instead of a probe-join (same rows in the same order: covered
  /// leaves are always semi-eligible, one emission per surviving row).
  bool filter = false;
};

/// Everything the lowering of one conjunction decides, computed in ONE
/// walk shared by the iterator compiler, EXPLAIN, and the cost model —
/// the single source of truth that keeps printed/priced build modes
/// equal to executed ones.
struct ConjunctionLowering {
  JoinTree tree;
  std::vector<bool> semi;
  std::vector<NodePlan> nodes;           ///< indexed like tree.nodes
  std::vector<LazyLeafMode> leaf_modes;  ///< indexed like conj_inputs[conj]
};

ConjunctionLowering PlanConjunctionLowering(const QueryPlan& plan,
                                            size_t conj, JoinTree tree,
                                            const PipelineShape& shape) {
  const std::vector<size_t>& ids = plan.conj_inputs[conj];
  ConjunctionLowering low;
  low.tree = std::move(tree);
  low.leaf_modes.assign(ids.size(), LazyLeafMode::kDeferred);
  std::vector<std::vector<std::string>> input_cols;
  for (size_t id : ids) input_cols.push_back(plan.structures[id].columns);
  low.semi = SemiJoinEligible(low.tree, input_cols, shape);
  low.nodes.resize(low.tree.nodes.size());

  auto scan_mode = [&](size_t input) {
    return StructureKeyedColumn(plan, ids[input]) >= 0
               ? LazyLeafMode::kStreamed
               : LazyLeafMode::kDeferred;
  };
  for (size_t i = 0; i < low.tree.nodes.size(); ++i) {
    const JoinTreeNode& node = low.tree.nodes[i];
    NodePlan& np = low.nodes[i];
    if (node.leaf) {
      np.cols = input_cols[node.input];
      continue;
    }
    const JoinTreeNode& lnode = low.tree.nodes[static_cast<size_t>(node.left)];
    const JoinTreeNode& rnode =
        low.tree.nodes[static_cast<size_t>(node.right)];
    const NodePlan& left = low.nodes[static_cast<size_t>(node.left)];
    const NodePlan& right = low.nodes[static_cast<size_t>(node.right)];
    std::vector<std::string> extra_names;
    for (size_t r = 0; r < right.cols.size(); ++r) {
      int pos = IndexOf(left.cols, right.cols[r]);
      if (pos >= 0) {
        np.left_key.push_back(pos);
        np.right_key.push_back(static_cast<int>(r));
      } else {
        np.right_extras.push_back(static_cast<int>(r));
        extra_names.push_back(right.cols[r]);
      }
    }
    if (lnode.leaf) {
      // Consumed as this join's driving stream.
      low.leaf_modes[lnode.input] = scan_mode(lnode.input);
    }
    if (rnode.leaf) {
      int keyed_col = StructureKeyedColumn(plan, ids[rnode.input]);
      for (size_t k = 0; k < np.right_key.size(); ++k) {
        if (np.right_key[k] == keyed_col) {
          np.keyed_probe_pos = np.left_key[k];
          break;
        }
      }
      low.leaf_modes[rnode.input] = np.keyed_probe_pos >= 0
                                        ? LazyLeafMode::kKeyed
                                        : LazyLeafMode::kDeferred;
      // Residual-predicate lowering: a covered leaf (no new columns)
      // under eager collection runs as a membership filter over the
      // prebuilt structure — no hash table, no match chains. Lazy keeps
      // the probe-join so keyed/deferred demand-builds stay in play.
      if (!np.left_key.empty() && np.right_extras.empty() &&
          plan.collection != CollectionPolicy::kLazy) {
        np.filter = true;
      }
    }
    np.cols = left.cols;
    if (!low.semi[i]) {
      np.cols.insert(np.cols.end(), extra_names.begin(), extra_names.end());
    }
  }
  if (low.tree.nodes.back().leaf) {
    // Single-input conjunction: the structure is scanned directly.
    low.leaf_modes[low.tree.nodes.back().input] =
        scan_mode(low.tree.nodes.back().input);
  }
  return low;
}

/// Attempts the morsel-parallel lowering of one conjunction: the whole
/// chain (scan → joins/filters → extends → alignment) compiled into a
/// ParallelChainSpec and wrapped in a MorselParallelIter. Returns a null
/// iterator when the shape is ineligible — anything but a pure left-deep
/// chain of prebuilt right leaves falls back to the serial chain (the
/// caller gates on eager collection, parallel > 1, and no profile).
/// Eligibility never changes plans, rows, order, or work counters: the
/// worker chains are the serial chain's operators over morsel slices,
/// merged back in morsel order.
Result<RefIteratorPtr> TryCompileParallel(const QueryPlan& plan, size_t conj,
                                          const ConjunctionLowering& low,
                                          const CollectionResult& coll,
                                          const PipelineShape& shape,
                                          ExecStats* stats) {
  const std::vector<size_t>& ids = plan.conj_inputs[conj];
  const std::vector<JoinTreeNode>& nodes = low.tree.nodes;
  ParallelChainSpec spec;
  spec.batch_size = plan.batch_size > 0 ? plan.batch_size : 1;
  spec.workers = plan.parallel;
  std::vector<std::string> cols;
  if (nodes.back().leaf) {
    // Single-structure conjunction: the driving scan is the whole chain.
    spec.driving = &coll.structures[ids[nodes.back().input]];
    cols = low.nodes.back().cols;
  } else {
    // The tree must be one left-deep chain evaluated in node order:
    // every internal node's right child a leaf, its left child the
    // previous chain link (the driving leaf for the first join).
    size_t driving_idx = nodes.size() - 1;
    while (!nodes[driving_idx].leaf) {
      driving_idx = static_cast<size_t>(nodes[driving_idx].left);
    }
    size_t expected_left = driving_idx;
    for (size_t i = 0; i < nodes.size(); ++i) {
      const JoinTreeNode& node = nodes[i];
      if (node.leaf) continue;
      const JoinTreeNode& rnode = nodes[static_cast<size_t>(node.right)];
      if (!rnode.leaf) return RefIteratorPtr();  // bushy
      if (static_cast<size_t>(node.left) != expected_left) {
        return RefIteratorPtr();  // not the chain the serial loop drains
      }
      expected_left = i;
      const NodePlan& np = low.nodes[i];
      ParallelJoinStep step;
      step.right = &coll.structures[ids[rnode.input]];
      step.left_key = np.left_key;
      step.right_key = np.right_key;
      step.right_extras = np.right_extras;
      step.semi = low.semi[i];
      step.filter = np.filter;
      spec.joins.push_back(std::move(step));
    }
    if (expected_left != nodes.size() - 1) return RefIteratorPtr();
    spec.driving = &coll.structures[ids[nodes[driving_idx].input]];
    cols = low.nodes.back().cols;
  }

  // Extensions — the same decisions CompileConjunction's serial tail
  // makes under eager collection (see the comments there).
  for (const QuantifiedVar& qv : shape.active) {
    if (IndexOf(cols, qv.var) >= 0) continue;
    if (shape.IsExistential(qv.var)) {
      bool in_structures = false;
      for (size_t id : ids) {
        if (IndexOf(plan.structures[id].columns, qv.var) >= 0) {
          in_structures = true;
          break;
        }
      }
      if (in_structures) continue;  // semi-dropped: already witnessed
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      if (it->second.empty()) return RefIteratorPtr(new EmptyIter());
      continue;
    }
    auto it = coll.range_refs.find(qv.var);
    if (it == coll.range_refs.end()) {
      return Status::Internal("no materialised range for '" + qv.var + "'");
    }
    spec.extends.push_back(&it->second);
    cols.push_back(qv.var);
  }

  // Alignment onto the needed layout, identity skipped — as serial.
  std::vector<int> positions;
  for (const std::string& name : shape.needed) {
    int pos = IndexOf(cols, name);
    if (pos < 0) {
      return Status::Internal("pipeline: conjunction lacks column '" + name +
                              "'");
    }
    positions.push_back(pos);
  }
  if (cols.size() != shape.needed.size() ||
      !std::is_sorted(positions.begin(), positions.end())) {
    spec.project = true;
    spec.project_positions = std::move(positions);
    spec.project_cols = shape.needed;
  }
  return RefIteratorPtr(
      new MorselParallelIter(std::move(spec), stats));
}

/// Lowers one conjunction's join tree + extension + projection-to-needed
/// into an iterator chain emitting rows in `shape.needed` layout.
/// `*root_node` receives the chain root's profile node id (-1 unprofiled).
Result<RefIteratorPtr> CompileConjunction(const QueryPlan& plan, size_t conj,
                                          CollectionBuilders* builders,
                                          const PipelineShape& shape,
                                          ExecStats* stats,
                                          PeakTracker* tracker,
                                          PipelineProfile* profile,
                                          int* root_node) {
  const bool lazy = plan.collection == CollectionPolicy::kLazy;
  const CollectionResult& coll = builders->result();
  const std::vector<size_t>& ids = plan.conj_inputs[conj];

  RefIteratorPtr chain;
  int chain_node = -1;
  *root_node = -1;
  std::vector<std::string> cols;
  if (ids.empty()) {
    // TRUE: the empty row.
    chain = ProfileWrap(profile, std::make_unique<UnitIter>(), "unit", -1.0,
                        {}, &chain_node);
  } else {
    JoinTree tree;
    if (lazy) {
      tree = LazyJoinTree(plan, conj, ids.size());
    } else {
      std::vector<const RefRelation*> inputs;
      for (size_t id : ids) inputs.push_back(&coll.structures[id]);
      tree = RuntimeJoinOrder(plan, conj, inputs);
    }
    if (!tree.Matches(ids.size())) {
      return Status::Internal("pipeline: malformed runtime join tree");
    }
    ConjunctionLowering low =
        PlanConjunctionLowering(plan, conj, std::move(tree), shape);

    // Morsel-parallel drain: eager + unprofiled only (lazy builds and
    // per-operator timers are inherently single-threaded), and only for
    // shapes TryCompileParallel accepts — everything else keeps the
    // serial chain, so SET PARALLEL can never change a plan's results.
    if (plan.parallel > 1 && !lazy && profile == nullptr) {
      PASCALR_ASSIGN_OR_RETURN(
          RefIteratorPtr par,
          TryCompileParallel(plan, conj, low, coll, shape, stats));
      if (par != nullptr) {
        *root_node = -1;
        return par;
      }
    }

    std::vector<RefIteratorPtr> node_iters(low.tree.nodes.size());
    std::vector<int> node_profs(low.tree.nodes.size(), -1);
    // A leaf as a stream: lazy leaves stream straight off the base
    // relation when the lowering says so (collection mode (c) — the
    // structure is never materialised) and defer a full build to the
    // first Next otherwise.
    auto leaf_stream = [&](size_t node_idx) -> RefIteratorPtr {
      size_t input = low.tree.nodes[node_idx].input;
      size_t id = ids[input];
      double est = low.tree.nodes[node_idx].est_rows > 0.0
                       ? low.tree.nodes[node_idx].est_rows
                       : -1.0;
      const std::string& name = plan.structures[id].debug_name;
      RefIteratorPtr leaf;
      const char* kind = "scan";
      if (lazy && !builders->structure_built(id)) {
        if (low.leaf_modes[input] == LazyLeafMode::kStreamed) {
          leaf = std::make_unique<BaseScanIter>(builders, id);
          kind = "base-scan";
        } else {
          leaf = std::make_unique<ScanIter>(builders, id);
        }
      } else {
        leaf = std::make_unique<ScanIter>(&coll.structures[id]);
      }
      return ProfileWrap(profile, std::move(leaf),
                         StrFormat("%s %s", kind, name.c_str()), est, {},
                         &node_profs[node_idx]);
    };
    auto as_iterator = [&](int node_idx) -> RefIteratorPtr {
      size_t idx = static_cast<size_t>(node_idx);
      if (low.tree.nodes[idx].leaf) return leaf_stream(idx);
      return std::move(node_iters[idx]);
    };

    for (size_t i = 0; i < low.tree.nodes.size(); ++i) {
      const JoinTreeNode& node = low.tree.nodes[i];
      if (node.leaf) continue;
      NodePlan& np = low.nodes[i];
      RefIteratorPtr left_iter = as_iterator(node.left);
      int left_prof = node_profs[static_cast<size_t>(node.left)];
      double est = node.est_rows > 0.0 ? node.est_rows : -1.0;
      const char* join_kind = low.semi[i] ? "semi-join" : "probe-join";
      const JoinTreeNode& rnode =
          low.tree.nodes[static_cast<size_t>(node.right)];
      RefIteratorPtr join;
      std::string join_label;
      std::vector<int> join_children = {left_prof};
      if (rnode.leaf && np.filter) {
        // Covered leaf: residual predicate, vectorized selection-vector
        // filter against the prebuilt structure (see NodePlan::filter).
        size_t right_id = ids[rnode.input];
        join_label = StrFormat("filter %s",
                               plan.structures[right_id].debug_name.c_str());
        join = std::make_unique<FilterIter>(std::move(left_iter),
                                            &coll.structures[right_id],
                                            std::move(np.left_key), stats);
      } else if (rnode.leaf) {
        size_t right_id = ids[rnode.input];
        join_label = StrFormat("%s %s", join_kind,
                               plan.structures[right_id].debug_name.c_str());
        if (lazy && !builders->structure_built(right_id)) {
          join = std::make_unique<ProbeJoinIter>(
              std::move(left_iter), builders, right_id,
              std::move(np.left_key), std::move(np.right_key),
              std::move(np.right_extras), low.semi[i], stats,
              np.keyed_probe_pos);
        } else {
          join = std::make_unique<ProbeJoinIter>(
              std::move(left_iter), &coll.structures[right_id],
              std::move(np.left_key), std::move(np.right_key),
              std::move(np.right_extras), low.semi[i], stats);
        }
      } else {
        // Bushy right subtree: blocking build, drained at first Next.
        join_label = StrFormat("%s (bushy build)", join_kind);
        join_children.push_back(node_profs[static_cast<size_t>(node.right)]);
        join = std::make_unique<ProbeJoinIter>(
            std::move(left_iter),
            std::move(node_iters[static_cast<size_t>(node.right)]),
            low.nodes[static_cast<size_t>(node.right)].cols,
            std::move(np.left_key), std::move(np.right_key),
            std::move(np.right_extras), low.semi[i], stats, tracker);
      }
      node_iters[i] = ProfileWrap(profile, std::move(join),
                                  std::move(join_label), est,
                                  std::move(join_children), &node_profs[i]);
    }
    chain = as_iterator(static_cast<int>(low.tree.nodes.size()) - 1);
    chain_node = node_profs.back();
    cols = std::move(low.nodes.back().cols);
  }

  // Extend to the active variables the conjunction does not bind. Purely
  // existential variables never extend: present in some structure, the
  // joins witnessed them; absent everywhere, a non-empty range is the
  // whole existence proof (and an empty one annihilates the conjunct,
  // exactly like the materializing path's product with an empty range).
  for (const QuantifiedVar& qv : shape.active) {
    if (IndexOf(cols, qv.var) >= 0) continue;
    if (shape.IsExistential(qv.var)) {
      bool in_structures = false;
      for (size_t id : ids) {
        if (IndexOf(plan.structures[id].columns, qv.var) >= 0) {
          in_structures = true;
          break;
        }
      }
      if (in_structures) continue;  // semi-dropped: already witnessed
      if (lazy) {
        // The emptiness check must not force the range at compile time;
        // the guard materialises it at the first pull instead.
        chain = ProfileWrap(
            profile,
            std::make_unique<RangeGuardIter>(std::move(chain), builders,
                                             qv.var),
            "range-guard " + qv.var, -1.0, {chain_node}, &chain_node);
        continue;
      }
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      if (it->second.empty()) {
        return ProfileWrap(profile, RefIteratorPtr(new EmptyIter()), "empty",
                           -1.0, {}, root_node);
      }
      continue;
    }
    RefIteratorPtr extended;
    if (lazy) {
      extended = std::make_unique<ExtendIter>(std::move(chain), builders,
                                              qv.var, stats);
    } else {
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      extended =
          std::make_unique<ExtendIter>(std::move(chain), &it->second, stats);
    }
    chain = ProfileWrap(profile, std::move(extended), "extend " + qv.var,
                        -1.0, {chain_node}, &chain_node);
    cols.push_back(qv.var);
  }

  // Align onto the needed layout (drops leftover existential columns).
  // Already-aligned chains — the common single-structure conjunction —
  // skip the copy; the sink above dedups either way.
  std::vector<int> positions;
  for (const std::string& name : shape.needed) {
    int pos = IndexOf(cols, name);
    if (pos < 0) {
      return Status::Internal("pipeline: conjunction lacks column '" + name +
                              "'");
    }
    positions.push_back(pos);
  }
  if (cols.size() == shape.needed.size() &&
      std::is_sorted(positions.begin(), positions.end())) {
    *root_node = chain_node;
    return chain;  // identity layout
  }
  return ProfileWrap(
      profile,
      RefIteratorPtr(new ProjectIter(std::move(chain), std::move(positions),
                                     shape.needed,
                                     /*dedup=*/false, stats, tracker)),
      "project", -1.0, {chain_node}, root_node);
}

}  // namespace

std::vector<LazyLeafMode> LazyConjunctionLeafModes(
    const QueryPlan& plan, size_t conj, const PipelineShape& shape) {
  const size_t n = plan.conj_inputs[conj].size();
  if (n == 0) return {};
  JoinTree tree = LazyJoinTree(plan, conj, n);
  if (!tree.Matches(n)) {
    return std::vector<LazyLeafMode>(n, LazyLeafMode::kDeferred);
  }
  return PlanConjunctionLowering(plan, conj, std::move(tree), shape)
      .leaf_modes;
}

Result<CompiledPipeline> CompilePipeline(const QueryPlan& plan,
                                         CollectionBuilders* builders,
                                         ExecStats* stats,
                                         PeakTracker* tracker,
                                         PipelineProfile* profile) {
  PipelineShape shape = AnalyzePipelineShape(plan);
  CompiledPipeline out;
  out.columns = shape.free_names;

  if (plan.sf.matrix.IsFalse()) {
    int node = -1;
    out.root = ProfileWrap(profile, std::make_unique<EmptyIter>(), "empty",
                           -1.0, {}, &node);
    if (profile != nullptr) profile->SetRoot(node);
    return out;
  }
  if (plan.conj_inputs.size() < plan.sf.matrix.disjuncts.size()) {
    return Status::Internal("pipeline: conjunction inputs out of sync");
  }

  std::vector<RefIteratorPtr> disjuncts;
  std::vector<int> disjunct_nodes;
  for (size_t c = 0; c < plan.sf.matrix.disjuncts.size(); ++c) {
    int node = -1;
    PASCALR_ASSIGN_OR_RETURN(
        RefIteratorPtr one, CompileConjunction(plan, c, builders, shape,
                                               stats, tracker, profile,
                                               &node));
    disjuncts.push_back(std::move(one));
    disjunct_nodes.push_back(node);
  }
  int stream_node = disjunct_nodes.front();
  RefIteratorPtr stream;
  if (disjuncts.size() == 1) {
    stream = std::move(disjuncts.front());
  } else {
    stream = ProfileWrap(profile,
                         RefIteratorPtr(new ConcatIter(std::move(disjuncts))),
                         "concat", -1.0, std::move(disjunct_nodes),
                         &stream_node);
  }

  int root_node = -1;
  if (shape.has_division) {
    // Universal quantification is inherently blocking: buffer the needed
    // columns (set semantics) and run the tail right-to-left.
    out.root = ProfileWrap(
        profile,
        RefIteratorPtr(new QuantifierTailIter(
            std::move(stream), std::move(shape.tail), shape.needed,
            shape.free_names, builders, plan.division, stats, tracker)),
        "quantifier-tail", -1.0, {stream_node}, &root_node);
    if (profile != nullptr) profile->SetRoot(root_node);
    return out;
  }

  // No division: `needed` already IS the free layout; a streaming dedup
  // sink makes the row set identical to the materializing path's final
  // projection.
  std::vector<int> identity;
  for (size_t i = 0; i < shape.needed.size(); ++i) {
    identity.push_back(static_cast<int>(i));
  }
  out.root = ProfileWrap(
      profile,
      RefIteratorPtr(new ProjectIter(std::move(stream), std::move(identity),
                                     shape.needed,
                                     /*dedup=*/true, stats, tracker)),
      "dedup-sink", -1.0, {stream_node}, &root_node);
  if (profile != nullptr) profile->SetRoot(root_node);
  return out;
}

}  // namespace pascalr
