#include "pipeline/compile.h"

#include <algorithm>

#include "exec/combination.h"

namespace pascalr {

namespace {

int IndexOf(const std::vector<std::string>& cols, const std::string& name) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Build state of one join-tree node while lowering it to iterators.
struct NodeState {
  const RefRelation* structure = nullptr;  ///< leaf: probe/scan in place
  RefIteratorPtr iter;                     ///< internal (or consumed leaf)
  std::vector<std::string> cols;
};

/// The node as a stream (leaves become scans on demand; right-side leaves
/// are probed in place instead and never pass through here).
RefIteratorPtr AsIterator(NodeState* node) {
  if (node->iter != nullptr) return std::move(node->iter);
  return std::make_unique<ScanIter>(node->structure);
}

/// Lowers one conjunction's join tree + extension + projection-to-needed
/// into an iterator chain emitting rows in `shape.needed` layout.
Result<RefIteratorPtr> CompileConjunction(const QueryPlan& plan, size_t conj,
                                          const CollectionResult& coll,
                                          const PipelineShape& shape,
                                          ExecStats* stats,
                                          PeakTracker* tracker) {
  std::vector<const RefRelation*> inputs;
  std::vector<std::vector<std::string>> input_cols;
  for (size_t id : plan.conj_inputs[conj]) {
    inputs.push_back(&coll.structures[id]);
    input_cols.push_back(coll.structures[id].columns());
  }

  RefIteratorPtr chain;
  std::vector<std::string> cols;
  if (inputs.empty()) {
    chain = std::make_unique<UnitIter>();  // TRUE: the empty row
  } else {
    JoinTree tree = RuntimeJoinOrder(plan, conj, inputs);
    if (!tree.Matches(inputs.size())) {
      return Status::Internal("pipeline: malformed runtime join tree");
    }
    std::vector<bool> semi = SemiJoinEligible(tree, input_cols, shape);
    std::vector<NodeState> nodes(tree.nodes.size());
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const JoinTreeNode& node = tree.nodes[i];
      NodeState& state = nodes[i];
      if (node.leaf) {
        state.structure = inputs[node.input];
        state.cols = input_cols[node.input];
        continue;
      }
      NodeState& left = nodes[static_cast<size_t>(node.left)];
      NodeState& right = nodes[static_cast<size_t>(node.right)];
      std::vector<int> left_key, right_key, right_extras;
      std::vector<std::string> extra_names;
      for (size_t r = 0; r < right.cols.size(); ++r) {
        int pos = IndexOf(left.cols, right.cols[r]);
        if (pos >= 0) {
          left_key.push_back(pos);
          right_key.push_back(static_cast<int>(r));
        } else {
          right_extras.push_back(static_cast<int>(r));
          extra_names.push_back(right.cols[r]);
        }
      }
      state.cols = left.cols;
      if (!semi[i]) {
        state.cols.insert(state.cols.end(), extra_names.begin(),
                          extra_names.end());
      }
      RefIteratorPtr left_iter = AsIterator(&left);
      if (right.structure != nullptr) {
        state.iter = std::make_unique<ProbeJoinIter>(
            std::move(left_iter), right.structure, std::move(left_key),
            std::move(right_key), std::move(right_extras), semi[i], stats);
      } else {
        // Bushy right subtree: blocking build, drained at first Next.
        state.iter = std::make_unique<ProbeJoinIter>(
            std::move(left_iter), std::move(right.iter), right.cols,
            std::move(left_key), std::move(right_key),
            std::move(right_extras), semi[i], stats, tracker);
      }
    }
    chain = AsIterator(&nodes.back());
    cols = std::move(nodes.back().cols);
  }

  // Extend to the active variables the conjunction does not bind. Purely
  // existential variables never extend: present in some structure, the
  // joins witnessed them; absent everywhere, a non-empty range is the
  // whole existence proof (and an empty one annihilates the conjunct,
  // exactly like the materializing path's product with an empty range).
  for (const QuantifiedVar& qv : shape.active) {
    if (IndexOf(cols, qv.var) >= 0) continue;
    if (shape.IsExistential(qv.var)) {
      bool in_structures = false;
      for (const std::vector<std::string>& sc : input_cols) {
        if (IndexOf(sc, qv.var) >= 0) {
          in_structures = true;
          break;
        }
      }
      if (in_structures) continue;  // semi-dropped: already witnessed
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      if (it->second.empty()) return RefIteratorPtr(new EmptyIter());
      continue;
    }
    auto it = coll.range_refs.find(qv.var);
    if (it == coll.range_refs.end()) {
      return Status::Internal("no materialised range for '" + qv.var + "'");
    }
    chain = std::make_unique<ExtendIter>(std::move(chain), &it->second, stats);
    cols.push_back(qv.var);
  }

  // Align onto the needed layout (drops leftover existential columns).
  // Already-aligned chains — the common single-structure conjunction —
  // skip the copy; the sink above dedups either way.
  std::vector<int> positions;
  for (const std::string& name : shape.needed) {
    int pos = IndexOf(cols, name);
    if (pos < 0) {
      return Status::Internal("pipeline: conjunction lacks column '" + name +
                              "'");
    }
    positions.push_back(pos);
  }
  if (cols.size() == shape.needed.size() &&
      std::is_sorted(positions.begin(), positions.end())) {
    return chain;  // identity layout
  }
  return RefIteratorPtr(new ProjectIter(std::move(chain),
                                        std::move(positions), shape.needed,
                                        /*dedup=*/false, stats, tracker));
}

}  // namespace

Result<CompiledPipeline> CompilePipeline(const QueryPlan& plan,
                                         const CollectionResult& coll,
                                         ExecStats* stats,
                                         PeakTracker* tracker) {
  PipelineShape shape = AnalyzePipelineShape(plan);
  CompiledPipeline out;
  out.columns = shape.free_names;

  if (plan.sf.matrix.IsFalse()) {
    out.root = std::make_unique<EmptyIter>();
    return out;
  }
  if (plan.conj_inputs.size() < plan.sf.matrix.disjuncts.size()) {
    return Status::Internal("pipeline: conjunction inputs out of sync");
  }

  std::vector<RefIteratorPtr> disjuncts;
  for (size_t c = 0; c < plan.sf.matrix.disjuncts.size(); ++c) {
    PASCALR_ASSIGN_OR_RETURN(
        RefIteratorPtr one,
        CompileConjunction(plan, c, coll, shape, stats, tracker));
    disjuncts.push_back(std::move(one));
  }
  RefIteratorPtr stream =
      disjuncts.size() == 1
          ? std::move(disjuncts.front())
          : RefIteratorPtr(new ConcatIter(std::move(disjuncts)));

  if (shape.has_division) {
    // Universal quantification is inherently blocking: buffer the needed
    // columns (set semantics) and run the tail right-to-left.
    out.root = std::make_unique<QuantifierTailIter>(
        std::move(stream), std::move(shape.tail), shape.needed,
        shape.free_names, &coll.range_refs, plan.division, stats, tracker);
    return out;
  }

  // No division: `needed` already IS the free layout; a streaming dedup
  // sink makes the row set identical to the materializing path's final
  // projection.
  std::vector<int> identity;
  for (size_t i = 0; i < shape.needed.size(); ++i) {
    identity.push_back(static_cast<int>(i));
  }
  out.root = std::make_unique<ProjectIter>(std::move(stream),
                                           std::move(identity), shape.needed,
                                           /*dedup=*/true, stats, tracker);
  return out;
}

}  // namespace pascalr
