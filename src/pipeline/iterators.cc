#include "pipeline/iterators.h"

#include <algorithm>

#include "base/str_util.h"
#include "refstruct/division.h"
#include "refstruct/ops.h"
#include "storage/relation.h"

namespace pascalr {

namespace {

uint64_t HashKey(const RefRow& row, const std::vector<int>& positions) {
  uint64_t h = 0x100001b3ULL;
  for (int p : positions) {
    h = HashCombine(h, row[static_cast<size_t>(p)].Hash());
  }
  return h;
}

bool KeyEquals(const RefRow& a, const std::vector<int>& pa, const RefRow& b,
               const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

uint64_t HashKeyChunk(const Chunk& chunk, size_t row,
                      const std::vector<int>& positions) {
  uint64_t h = 0x100001b3ULL;
  for (int p : positions) {
    h = HashCombine(h, chunk.cols[static_cast<size_t>(p)][row].Hash());
  }
  return h;
}

bool KeyEqualsChunk(const Chunk& chunk, size_t row,
                    const std::vector<int>& pa, const RefRow& b,
                    const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (chunk.cols[static_cast<size_t>(pa[i])][row] !=
        b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

}  // namespace

JoinHashTable BuildJoinHashTable(const RefRelation& rel,
                                 const std::vector<int>& key) {
  JoinHashTable table;
  table.map.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    table.map[HashKey(rel.row(i), key)].push_back(i);
  }
  return table;
}

Result<bool> RefIterator::NextBatch(Chunk* out) {
  // Row bridge: the adapter that keeps unvectorized operators inside
  // batched plans. Work and counters are identical to pulling the same
  // rows through Next directly — only the call pattern changes.
  out->Reset(out->arity());
  RefRow row;
  while (!out->full()) {
    PASCALR_ASSIGN_OR_RETURN(bool more, Next(&row));
    if (!more) break;
    out->AppendRow(row);
  }
  return out->rows > 0;
}

Result<bool> UnitIter::Next(RefRow* out) {
  if (done_) return false;
  done_ = true;
  out->clear();
  return true;
}

Status ScanIter::Ensure() {
  if (rel_ == nullptr) {
    // Demand-driven: the structure materialises at the first pull.
    PASCALR_RETURN_IF_ERROR(builders_->EnsureStructure(structure_id_));
    rel_ = &builders_->result().structures[structure_id_];
  }
  if (end_ > rel_->size()) end_ = rel_->size();
  return Status::OK();
}

Result<bool> ScanIter::Next(RefRow* out) {
  PASCALR_RETURN_IF_ERROR(Ensure());
  if (pos_ >= end_) return false;
  *out = rel_->row(pos_++);
  return true;
}

Result<bool> ScanIter::NextBatch(Chunk* out) {
  PASCALR_RETURN_IF_ERROR(Ensure());
  const size_t arity = rel_->arity();
  out->Reset(arity);
  const size_t take = std::min(out->capacity, end_ - std::min(pos_, end_));
  if (take == 0) return false;
  // One pass over the row-major structure: each source row is chased
  // exactly once and the columns are written through raw pointers — no
  // per-row RefRow allocation, no per-element capacity check.
  for (size_t c = 0; c < arity; ++c) out->cols[c].resize(take);
  const RefRow* rows = rel_->rows().data() + pos_;
  if (arity == 1) {
    Ref* dst = out->cols[0].data();
    for (size_t r = 0; r < take; ++r) dst[r] = rows[r][0];
  } else {
    for (size_t r = 0; r < take; ++r) {
      const Ref* src = rows[r].data();
      for (size_t c = 0; c < arity; ++c) out->cols[c][r] = src[c];
    }
  }
  pos_ += take;
  out->rows = take;
  return true;
}

// ------------------------------------------------------------- BaseScanIter

Result<bool> BaseScanIter::Next(RefRow* out) {
  if (!prepared_) {
    prepared_ = true;
    PASCALR_RETURN_IF_ERROR(builders_->EnsureElementPrereqs(structure_id_));
    PASCALR_ASSIGN_OR_RETURN(const Relation* rel,
                             builders_->StructureBaseRelation(structure_id_));
    refs_ = rel->AllRefs();
  }
  while (true) {
    if (pending_pos_ < pending_.size()) {
      *out = pending_[pending_pos_++];
      return true;
    }
    if (ref_pos_ >= refs_.size()) return false;
    pending_.clear();
    pending_pos_ = 0;
    PASCALR_RETURN_IF_ERROR(
        builders_->EvalElement(structure_id_, refs_[ref_pos_++], &pending_));
  }
}

// ------------------------------------------------------------ ProbeJoinIter

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                             std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats)
    : left_(std::move(left)),
      right_(right),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats) {}

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, CollectionBuilders* builders,
                             size_t right_structure, std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats, int keyed_probe_pos)
    : left_(std::move(left)),
      builders_(builders),
      right_structure_(right_structure),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats),
      key_probe_pos_(keyed_probe_pos) {}

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, RefIteratorPtr right_source,
                             std::vector<std::string> right_columns,
                             std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats, PeakTracker* tracker)
    : left_(std::move(left)),
      right_source_(std::move(right_source)),
      right_buf_(std::move(right_columns)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats),
      tracker_(tracker) {}

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                             const JoinHashTable* shared,
                             std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats)
    : left_(std::move(left)),
      right_(right),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats),
      shared_table_(shared) {}

Status ProbeJoinIter::Prepare() {
  // prepared_ is only set on success: a failed Prepare (lazy build error,
  // bushy drain error) must re-run on the next Next, not probe
  // half-initialized state.
  if (builders_ != nullptr && key_probe_pos_ >= 0 &&
      !builders_->structure_built(right_structure_)) {
    // Lazy right side in keyed mode (the lowering decided the structure's
    // keyed column is part of the probe key): populate per requested join
    // key — an O(probe) element evaluation instead of an O(relation)
    // build; KeyEquals still verifies the full (possibly multi-column)
    // key below.
    keyed_mode_ = true;
    prepared_ = true;
    return Status::OK();
  }
  if (builders_ != nullptr) {
    PASCALR_RETURN_IF_ERROR(builders_->EnsureStructure(right_structure_));
    right_ = &builders_->result().structures[right_structure_];
  }
  if (right_source_ != nullptr) {
    // Bushy build: the right subtree must be complete before the first
    // probe — the one genuinely blocking join input, peak-counted.
    RefRow row;
    while (true) {
      PASCALR_ASSIGN_OR_RETURN(bool more, right_source_->Next(&row));
      if (!more) break;
      if (right_buf_.Add(std::move(row)) && tracker_ != nullptr) {
        tracker_->Add(1);
      }
    }
    right_source_.reset();
    right_ = &right_buf_;
  }
  if (!left_key_.empty() && shared_table_ == nullptr) {
    table_ = BuildJoinHashTable(*right_, right_key_);
    shared_table_ = &table_;
  }
  prepared_ = true;
  return Status::OK();
}

bool ProbeJoinIter::Emit(const RefRow& right_row, RefRow* out) {
  *out = left_row_;
  if (!semi_) {
    out->reserve(out->size() + right_extras_.size());
    for (int e : right_extras_) {
      out->push_back(right_row[static_cast<size_t>(e)]);
    }
  }
  if (stats_ != nullptr) ++stats_->combination_rows;
  return true;
}

Result<bool> ProbeJoinIter::Next(RefRow* out) {
  if (!prepared_) PASCALR_RETURN_IF_ERROR(Prepare());
  while (true) {
    if (!have_left_) {
      PASCALR_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      match_pos_ = 0;
      if (keyed_mode_) {
        PASCALR_ASSIGN_OR_RETURN(
            keyed_rows_,
            builders_->KeyedMatches(
                right_structure_,
                left_row_[static_cast<size_t>(key_probe_pos_)]));
      } else if (!left_key_.empty()) {
        auto it = shared_table_->map.find(HashKey(left_row_, left_key_));
        matches_ = it == shared_table_->map.end() ? nullptr : &it->second;
      }
    }
    if (keyed_mode_) {
      while (keyed_rows_ != nullptr && match_pos_ < keyed_rows_->size()) {
        const RefRow& candidate = (*keyed_rows_)[match_pos_++];
        if (!KeyEquals(left_row_, left_key_, candidate, right_key_)) continue;
        if (semi_) have_left_ = false;  // first match wins; next left row
        return Emit(candidate, out);
      }
      have_left_ = false;
      continue;
    }
    if (left_key_.empty()) {
      // Cartesian step. Semi: the right side only needs to be non-empty.
      if (semi_) {
        have_left_ = false;
        if (!right_->empty()) return Emit(right_->row(0), out);
        continue;
      }
      if (match_pos_ < right_->size()) {
        return Emit(right_->row(match_pos_++), out);
      }
      have_left_ = false;
      continue;
    }
    // Keyed probe: walk the hash chain, verifying against collisions.
    while (matches_ != nullptr && match_pos_ < matches_->size()) {
      const RefRow& candidate = right_->row((*matches_)[match_pos_++]);
      if (!KeyEquals(left_row_, left_key_, candidate, right_key_)) continue;
      if (semi_) have_left_ = false;  // first match wins; next left row
      return Emit(candidate, out);
    }
    have_left_ = false;
  }
}

void ProbeJoinIter::EmitBatch(size_t l, const RefRow* right_row, Chunk* out) {
  const size_t left_arity = left_chunk_.arity();
  for (size_t c = 0; c < left_arity; ++c) {
    out->cols[c].push_back(left_chunk_.cols[c][l]);
  }
  if (!semi_ && right_row != nullptr) {
    for (size_t e = 0; e < right_extras_.size(); ++e) {
      out->cols[left_arity + e].push_back(
          (*right_row)[static_cast<size_t>(right_extras_[e])]);
    }
  }
  ++out->rows;
  if (stats_ != nullptr) ++stats_->combination_rows;
}

Result<bool> ProbeJoinIter::NextBatch(Chunk* out) {
  if (!prepared_) PASCALR_RETURN_IF_ERROR(Prepare());
  if (keyed_mode_) {
    // Lazy per-join-key population stays row-at-a-time (the builders'
    // keyed cache is inherently per-probe); the bridge keeps it working.
    return RefIterator::NextBatch(out);
  }
  // The chunk contract requires a full overwrite on every pull: start
  // from an empty chunk so rows from the previous pull can never leak
  // into this one when the left child turns out to be exhausted.
  out->Reset(out->arity());
  // `have_left_` marks a left row whose match chain is mid-emission
  // (the previous output chunk filled up); everything else restarts
  // from the left chunk cursor.
  bool sized = left_chunk_.rows > 0 || have_left_;
  if (sized) {
    out->Reset(left_chunk_.arity() +
               (semi_ ? 0 : right_extras_.size()));
  }
  while (!out->full()) {
    if (!have_left_) {
      if (left_pos_ >= left_chunk_.rows) {
        left_chunk_.capacity = out->capacity;
        PASCALR_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&left_chunk_));
        if (!more) break;
        left_pos_ = 0;
        if (!sized) {
          sized = true;
          out->Reset(left_chunk_.arity() +
                     (semi_ ? 0 : right_extras_.size()));
        }
      }
      have_left_ = true;
      match_pos_ = 0;
      if (!left_key_.empty()) {
        auto it = shared_table_->map.find(
            HashKeyChunk(left_chunk_, left_pos_, left_key_));
        matches_ = it == shared_table_->map.end() ? nullptr : &it->second;
      }
    }
    const size_t l = left_pos_;
    if (left_key_.empty()) {
      // Cartesian step. Semi: the right side only needs to be non-empty.
      if (semi_) {
        if (!right_->empty()) EmitBatch(l, nullptr, out);
      } else {
        while (match_pos_ < right_->size() && !out->full()) {
          EmitBatch(l, &right_->row(match_pos_++), out);
        }
        if (match_pos_ < right_->size()) continue;  // out full, row pending
      }
    } else {
      bool emitted_semi = false;
      while (matches_ != nullptr && match_pos_ < matches_->size() &&
             !out->full()) {
        const RefRow& candidate = right_->row((*matches_)[match_pos_++]);
        if (!KeyEqualsChunk(left_chunk_, l, left_key_, candidate,
                            right_key_)) {
          continue;
        }
        EmitBatch(l, &candidate, out);
        if (semi_) {
          emitted_semi = true;
          break;  // first match wins; next left row
        }
      }
      if (!emitted_semi && matches_ != nullptr &&
          match_pos_ < matches_->size()) {
        continue;  // out full mid-chain, left row stays pending
      }
    }
    have_left_ = false;
    ++left_pos_;
  }
  return out->rows > 0;
}

// --------------------------------------------------------------- ExtendIter

Status ExtendIter::EnsureRefs() {
  if (refs_ != nullptr) return Status::OK();
  PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(var_));
  auto it = builders_->result().range_refs.find(var_);
  if (it == builders_->result().range_refs.end()) {
    return Status::Internal("no materialised range for '" + var_ + "'");
  }
  refs_ = &it->second;
  return Status::OK();
}

Result<bool> ExtendIter::Next(RefRow* out) {
  PASCALR_RETURN_IF_ERROR(EnsureRefs());
  if (refs_->empty()) return false;  // product with an empty range
  while (true) {
    if (!have_) {
      PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(&row_));
      if (!more) return false;
      have_ = true;
      pos_ = 0;
    }
    if (pos_ < refs_->size()) {
      *out = row_;
      out->push_back((*refs_)[pos_++]);
      if (stats_ != nullptr) ++stats_->combination_rows;
      return true;
    }
    have_ = false;
  }
}

Result<bool> ExtendIter::NextBatch(Chunk* out) {
  PASCALR_RETURN_IF_ERROR(EnsureRefs());
  const std::vector<Ref>& refs = *refs_;
  if (refs.empty()) {
    out->Reset(out->arity());
    return false;  // product with an empty range
  }
  // Full overwrite on every pull: without this, an exhausted child
  // (whose chunk was zeroed by its own final refill) leaves `sized`
  // false and the previous pull's rows would be returned again.
  out->Reset(out->arity());
  bool sized = child_chunk_.rows > 0;
  if (sized) out->Reset(child_chunk_.arity() + 1);
  while (!out->full()) {
    if (child_pos_ >= child_chunk_.rows) {
      if (pos_ != 0 && pos_ < refs.size()) break;  // mid-row, cannot refill
      child_chunk_.capacity = out->capacity;
      PASCALR_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_chunk_));
      if (!more) break;
      child_pos_ = 0;
      pos_ = 0;
      if (!sized) {
        sized = true;
        out->Reset(child_chunk_.arity() + 1);
      }
    }
    const size_t arity = child_chunk_.arity();
    while (child_pos_ < child_chunk_.rows && !out->full()) {
      // One child row × the range: replicate the row per ref in tight
      // column loops.
      const size_t take = std::min(refs.size() - pos_,
                                   out->capacity - out->rows);
      for (size_t c = 0; c < arity; ++c) {
        const Ref v = child_chunk_.cols[c][child_pos_];
        std::vector<Ref>& col = out->cols[c];
        col.insert(col.end(), take, v);
      }
      out->cols[arity].insert(out->cols[arity].end(), refs.begin() + pos_,
                              refs.begin() + pos_ + take);
      out->rows += take;
      if (stats_ != nullptr) stats_->combination_rows += take;
      pos_ += take;
      if (pos_ >= refs.size()) {
        pos_ = 0;
        ++child_pos_;
      }
    }
  }
  return out->rows > 0;
}

// ------------------------------------------------------------ RangeGuardIter

Status RangeGuardIter::Check() {
  if (checked_) return Status::OK();
  checked_ = true;
  PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(var_));
  auto it = builders_->result().range_refs.find(var_);
  empty_ = it == builders_->result().range_refs.end() || it->second.empty();
  return Status::OK();
}

Result<bool> RangeGuardIter::Next(RefRow* out) {
  PASCALR_RETURN_IF_ERROR(Check());
  if (empty_) return false;
  return child_->Next(out);
}

Result<bool> RangeGuardIter::NextBatch(Chunk* out) {
  PASCALR_RETURN_IF_ERROR(Check());
  if (empty_) {
    out->Reset(out->arity());
    return false;
  }
  return child_->NextBatch(out);
}

// --------------------------------------------------------------- FilterIter

bool FilterIter::Keeps(const Chunk& chunk, size_t row) {
  if (member_of_ != nullptr) {
    key_.resize(key_pos_.size());
    for (size_t i = 0; i < key_pos_.size(); ++i) {
      key_[i] = chunk.cols[static_cast<size_t>(key_pos_[i])][row];
    }
    return member_of_->Contains(key_);
  }
  bool same = chunk.cols[static_cast<size_t>(left_pos_)][row] ==
              chunk.cols[static_cast<size_t>(right_pos_)][row];
  return same == equal_;
}

Result<bool> FilterIter::Next(RefRow* out) {
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (stats_ != nullptr) ++stats_->comparisons;
    if (member_of_ != nullptr) {
      key_.resize(key_pos_.size());
      for (size_t i = 0; i < key_pos_.size(); ++i) {
        key_[i] = (*out)[static_cast<size_t>(key_pos_[i])];
      }
      if (member_of_->Contains(key_)) {
        // Kept rows count as combination output, mirroring the semi
        // probe-join this lowering replaces — combination_rows totals
        // are invariant across the two lowerings.
        if (stats_ != nullptr) ++stats_->combination_rows;
        return true;
      }
      continue;
    }
    bool same = (*out)[static_cast<size_t>(left_pos_)] ==
                (*out)[static_cast<size_t>(right_pos_)];
    if (same == equal_) return true;
  }
}

Result<bool> FilterIter::NextBatch(Chunk* out) {
  // The vectorized reference shape: evaluate the predicate over the
  // child chunk into a selection vector, then gather the survivors
  // column-by-column. Emits one (possibly short) chunk per child chunk;
  // an all-filtered chunk loops for the next.
  while (true) {
    child_chunk_.capacity = out->capacity;
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_chunk_));
    if (!more) {
      out->Reset(out->arity());
      return false;
    }
    sel_.clear();
    if (member_of_ != nullptr) {
      // Vectorized membership: hash the key columns in bulk (one tight
      // loop per column over the chunk), then probe with the precomputed
      // hash — the per-row work left is the index probe itself.
      const size_t n = child_chunk_.rows;
      hashes_.assign(n, RefRelation::kRowHashSeed);
      for (int pos : key_pos_) {
        const Ref* col = child_chunk_.cols[static_cast<size_t>(pos)].data();
        for (size_t r = 0; r < n; ++r) {
          hashes_[r] = HashCombine(hashes_[r], col[r].Hash());
        }
      }
      key_.resize(key_pos_.size());
      for (size_t r = 0; r < n; ++r) {
        for (size_t i = 0; i < key_pos_.size(); ++i) {
          key_[i] = child_chunk_.cols[static_cast<size_t>(key_pos_[i])][r];
        }
        if (member_of_->ContainsPrehashed(hashes_[r], key_)) {
          sel_.push_back(static_cast<uint32_t>(r));
        }
      }
    } else {
      for (size_t r = 0; r < child_chunk_.rows; ++r) {
        if (Keeps(child_chunk_, r)) sel_.push_back(static_cast<uint32_t>(r));
      }
    }
    if (stats_ != nullptr) {
      stats_->comparisons += child_chunk_.rows;
      // Membership mode replaces a semi probe-join: survivors are its
      // combination output (totals invariant across the two lowerings).
      if (member_of_ != nullptr) stats_->combination_rows += sel_.size();
    }
    if (sel_.empty()) continue;
    out->Reset(child_chunk_.arity());
    for (size_t c = 0; c < child_chunk_.arity(); ++c) {
      const std::vector<Ref>& src = child_chunk_.cols[c];
      std::vector<Ref>& dst = out->cols[c];
      for (uint32_t r : sel_) dst.push_back(src[r]);
    }
    out->rows = sel_.size();
    return true;
  }
}

// -------------------------------------------------------------- ProjectIter

ProjectIter::ProjectIter(RefIteratorPtr child, std::vector<int> positions,
                         std::vector<std::string> columns, bool dedup,
                         ExecStats* stats, PeakTracker* tracker)
    : child_(std::move(child)),
      positions_(std::move(positions)),
      dedup_(dedup),
      seen_(dedup ? RefRelation(std::move(columns)) : RefRelation()),
      stats_(stats),
      tracker_(tracker) {}

Result<bool> ProjectIter::Next(RefRow* out) {
  RefRow row;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) return false;
    RefRow projected;
    projected.reserve(positions_.size());
    for (int p : positions_) projected.push_back(row[static_cast<size_t>(p)]);
    if (dedup_) {
      if (!seen_.Add(projected)) continue;  // duplicate row, suppressed
      if (tracker_ != nullptr) tracker_->Add(1);
    }
    if (stats_ != nullptr) ++stats_->combination_rows;
    *out = std::move(projected);
    return true;
  }
}

Result<bool> ProjectIter::NextBatch(Chunk* out) {
  if (!dedup_) {
    // Mid-chain alignment: gather the selected columns of one child
    // chunk — a pure column shuffle, no per-row work at all.
    while (true) {
      child_chunk_.capacity = out->capacity;
      PASCALR_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_chunk_));
      if (!more) {
        out->Reset(out->arity());
        return false;
      }
      if (child_chunk_.rows == 0) continue;
      out->Reset(positions_.size());
      for (size_t i = 0; i < positions_.size(); ++i) {
        out->cols[i] = child_chunk_.cols[static_cast<size_t>(positions_[i])];
      }
      out->rows = child_chunk_.rows;
      if (stats_ != nullptr) stats_->combination_rows += out->rows;
      return true;
    }
  }
  // Dedup sink: accumulate until the output chunk is full (or the child
  // is dry), so the emitted chunk grid depends only on the distinct-row
  // stream and the batch size — not on upstream chunk boundaries. That
  // keeps batches_emitted deterministic and PARALLEL-degree-invariant.
  out->Reset(positions_.size());
  while (!out->full()) {
    if (child_pos_ >= child_chunk_.rows) {
      if (child_done_) break;
      child_chunk_.capacity = out->capacity;
      PASCALR_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_chunk_));
      if (!more) {
        child_done_ = true;
        break;
      }
      child_pos_ = 0;
    }
    while (child_pos_ < child_chunk_.rows && !out->full()) {
      const size_t r = child_pos_++;
      scratch_.resize(positions_.size());
      for (size_t i = 0; i < positions_.size(); ++i) {
        scratch_[i] = child_chunk_.cols[static_cast<size_t>(positions_[i])][r];
      }
      if (!seen_.Add(scratch_)) continue;  // duplicate row, suppressed
      if (tracker_ != nullptr) tracker_->Add(1);
      for (size_t i = 0; i < positions_.size(); ++i) {
        out->cols[i].push_back(scratch_[i]);
      }
      ++out->rows;
      if (stats_ != nullptr) ++stats_->combination_rows;
    }
  }
  return out->rows > 0;
}

// --------------------------------------------------------------- ConcatIter

Result<bool> ConcatIter::Next(RefRow* out) {
  while (current_ < children_.size()) {
    PASCALR_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    children_[current_].reset();  // fully drained; release its state
    ++current_;
  }
  return false;
}

Result<bool> ConcatIter::NextBatch(Chunk* out) {
  while (current_ < children_.size()) {
    PASCALR_ASSIGN_OR_RETURN(bool more, children_[current_]->NextBatch(out));
    if (more && out->rows > 0) return true;
    children_[current_].reset();  // fully drained; release its state
    ++current_;
  }
  out->Reset(out->arity());
  return false;
}

// ------------------------------------------------------ QuantifierTailIter

QuantifierTailIter::QuantifierTailIter(
    RefIteratorPtr child, std::vector<QuantifiedVar> tail,
    std::vector<std::string> columns, std::vector<std::string> free_names,
    CollectionBuilders* builders, DivisionAlgorithm division,
    ExecStats* stats, PeakTracker* tracker)
    : child_(std::move(child)),
      tail_(std::move(tail)),
      columns_(std::move(columns)),
      free_names_(std::move(free_names)),
      builders_(builders),
      division_(division),
      stats_(stats),
      tracker_(tracker) {}

Status QuantifierTailIter::Materialize() {
  materialized_ = true;
  // Buffer the stream with set semantics: exactly the division input the
  // materializing path arrives at after its inner-SOME projections. The
  // child is drained in chunks so a vectorized subtree stays batched up
  // to this blocking boundary.
  RefRelation combined(columns_);
  Chunk chunk;
  RefRow row;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&chunk));
    if (!more) break;
    for (size_t r = 0; r < chunk.rows; ++r) {
      chunk.RowAt(r, &row);
      if (combined.Add(row)) {
        if (tracker_ != nullptr) tracker_->Add(1);
        if (stats_ != nullptr) ++stats_->combination_rows;
      }
    }
  }
  child_.reset();

  for (size_t i = tail_.size(); i-- > 0;) {
    const QuantifiedVar& qv = tail_[i];
    if (qv.quantifier == Quantifier::kFree) break;
    RefRelation next;
    if (qv.quantifier == Quantifier::kSome) {
      std::vector<std::string> keep;
      for (const std::string& col : combined.columns()) {
        if (col != qv.var) keep.push_back(col);
      }
      PASCALR_ASSIGN_OR_RETURN(next, Project(combined, keep, stats_));
    } else {
      PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(qv.var));
      auto it = builders_->result().range_refs.find(qv.var);
      if (it == builders_->result().range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      PASCALR_ASSIGN_OR_RETURN(
          next, Divide(combined, qv.var, it->second, stats_, division_));
    }
    if (tracker_ != nullptr) {
      tracker_->Add(next.size());
      tracker_->Sub(combined.size());
    }
    combined = std::move(next);
  }

  PASCALR_ASSIGN_OR_RETURN(result_, Project(combined, free_names_, stats_));
  if (tracker_ != nullptr) {
    tracker_->Add(result_.size());
    tracker_->Sub(combined.size());
  }
  return Status::OK();
}

Result<bool> QuantifierTailIter::Next(RefRow* out) {
  if (!materialized_) PASCALR_RETURN_IF_ERROR(Materialize());
  if (pos_ >= result_.size()) {
    if (tracker_ != nullptr) tracker_->Sub(result_.size());
    result_.Clear();
    pos_ = 0;
    return false;
  }
  *out = result_.row(pos_++);
  return true;
}

Result<bool> QuantifierTailIter::NextBatch(Chunk* out) {
  if (!materialized_) PASCALR_RETURN_IF_ERROR(Materialize());
  const size_t arity = free_names_.size();
  out->Reset(arity);
  if (pos_ >= result_.size()) {
    if (tracker_ != nullptr) tracker_->Sub(result_.size());
    result_.Clear();
    pos_ = 0;
    return false;
  }
  const size_t take = std::min(out->capacity, result_.size() - pos_);
  for (size_t c = 0; c < arity; ++c) {
    std::vector<Ref>& col = out->cols[c];
    for (size_t r = 0; r < take; ++r) col.push_back(result_.row(pos_ + r)[c]);
  }
  pos_ += take;
  out->rows = take;
  return true;
}

}  // namespace pascalr
