#include "pipeline/iterators.h"

#include "base/str_util.h"
#include "refstruct/division.h"
#include "refstruct/ops.h"
#include "storage/relation.h"

namespace pascalr {

namespace {

uint64_t HashKey(const RefRow& row, const std::vector<int>& positions) {
  uint64_t h = 0x100001b3ULL;
  for (int p : positions) {
    h = HashCombine(h, row[static_cast<size_t>(p)].Hash());
  }
  return h;
}

bool KeyEquals(const RefRow& a, const std::vector<int>& pa, const RefRow& b,
               const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<bool> UnitIter::Next(RefRow* out) {
  if (done_) return false;
  done_ = true;
  out->clear();
  return true;
}

Result<bool> ScanIter::Next(RefRow* out) {
  if (rel_ == nullptr) {
    // Demand-driven: the structure materialises at the first pull.
    PASCALR_RETURN_IF_ERROR(builders_->EnsureStructure(structure_id_));
    rel_ = &builders_->result().structures[structure_id_];
  }
  if (pos_ >= rel_->size()) return false;
  *out = rel_->row(pos_++);
  return true;
}

// ------------------------------------------------------------- BaseScanIter

Result<bool> BaseScanIter::Next(RefRow* out) {
  if (!prepared_) {
    prepared_ = true;
    PASCALR_RETURN_IF_ERROR(builders_->EnsureElementPrereqs(structure_id_));
    PASCALR_ASSIGN_OR_RETURN(const Relation* rel,
                             builders_->StructureBaseRelation(structure_id_));
    refs_ = rel->AllRefs();
  }
  while (true) {
    if (pending_pos_ < pending_.size()) {
      *out = pending_[pending_pos_++];
      return true;
    }
    if (ref_pos_ >= refs_.size()) return false;
    pending_.clear();
    pending_pos_ = 0;
    PASCALR_RETURN_IF_ERROR(
        builders_->EvalElement(structure_id_, refs_[ref_pos_++], &pending_));
  }
}

// ------------------------------------------------------------ ProbeJoinIter

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, const RefRelation* right,
                             std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats)
    : left_(std::move(left)),
      right_(right),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats) {}

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, CollectionBuilders* builders,
                             size_t right_structure, std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats, int keyed_probe_pos)
    : left_(std::move(left)),
      builders_(builders),
      right_structure_(right_structure),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats),
      key_probe_pos_(keyed_probe_pos) {}

ProbeJoinIter::ProbeJoinIter(RefIteratorPtr left, RefIteratorPtr right_source,
                             std::vector<std::string> right_columns,
                             std::vector<int> left_key,
                             std::vector<int> right_key,
                             std::vector<int> right_extras, bool semi,
                             ExecStats* stats, PeakTracker* tracker)
    : left_(std::move(left)),
      right_source_(std::move(right_source)),
      right_buf_(std::move(right_columns)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      right_extras_(std::move(right_extras)),
      semi_(semi),
      stats_(stats),
      tracker_(tracker) {}

Status ProbeJoinIter::Prepare() {
  // prepared_ is only set on success: a failed Prepare (lazy build error,
  // bushy drain error) must re-run on the next Next, not probe
  // half-initialized state.
  if (builders_ != nullptr && key_probe_pos_ >= 0 &&
      !builders_->structure_built(right_structure_)) {
    // Lazy right side in keyed mode (the lowering decided the structure's
    // keyed column is part of the probe key): populate per requested join
    // key — an O(probe) element evaluation instead of an O(relation)
    // build; KeyEquals still verifies the full (possibly multi-column)
    // key below.
    keyed_mode_ = true;
    prepared_ = true;
    return Status::OK();
  }
  if (builders_ != nullptr) {
    PASCALR_RETURN_IF_ERROR(builders_->EnsureStructure(right_structure_));
    right_ = &builders_->result().structures[right_structure_];
  }
  if (right_source_ != nullptr) {
    // Bushy build: the right subtree must be complete before the first
    // probe — the one genuinely blocking join input, peak-counted.
    RefRow row;
    while (true) {
      PASCALR_ASSIGN_OR_RETURN(bool more, right_source_->Next(&row));
      if (!more) break;
      if (right_buf_.Add(std::move(row)) && tracker_ != nullptr) {
        tracker_->Add(1);
      }
    }
    right_source_.reset();
    right_ = &right_buf_;
  }
  if (!left_key_.empty()) {
    table_.reserve(right_->size());
    for (size_t i = 0; i < right_->size(); ++i) {
      table_[HashKey(right_->row(i), right_key_)].push_back(i);
    }
  }
  prepared_ = true;
  return Status::OK();
}

bool ProbeJoinIter::Emit(const RefRow& right_row, RefRow* out) {
  *out = left_row_;
  if (!semi_) {
    out->reserve(out->size() + right_extras_.size());
    for (int e : right_extras_) {
      out->push_back(right_row[static_cast<size_t>(e)]);
    }
  }
  if (stats_ != nullptr) ++stats_->combination_rows;
  return true;
}

Result<bool> ProbeJoinIter::Next(RefRow* out) {
  if (!prepared_) PASCALR_RETURN_IF_ERROR(Prepare());
  while (true) {
    if (!have_left_) {
      PASCALR_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      match_pos_ = 0;
      if (keyed_mode_) {
        PASCALR_ASSIGN_OR_RETURN(
            keyed_rows_,
            builders_->KeyedMatches(
                right_structure_,
                left_row_[static_cast<size_t>(key_probe_pos_)]));
      } else if (!left_key_.empty()) {
        auto it = table_.find(HashKey(left_row_, left_key_));
        matches_ = it == table_.end() ? nullptr : &it->second;
      }
    }
    if (keyed_mode_) {
      while (keyed_rows_ != nullptr && match_pos_ < keyed_rows_->size()) {
        const RefRow& candidate = (*keyed_rows_)[match_pos_++];
        if (!KeyEquals(left_row_, left_key_, candidate, right_key_)) continue;
        if (semi_) have_left_ = false;  // first match wins; next left row
        return Emit(candidate, out);
      }
      have_left_ = false;
      continue;
    }
    if (left_key_.empty()) {
      // Cartesian step. Semi: the right side only needs to be non-empty.
      if (semi_) {
        have_left_ = false;
        if (!right_->empty()) return Emit(right_->row(0), out);
        continue;
      }
      if (match_pos_ < right_->size()) {
        return Emit(right_->row(match_pos_++), out);
      }
      have_left_ = false;
      continue;
    }
    // Keyed probe: walk the hash chain, verifying against collisions.
    while (matches_ != nullptr && match_pos_ < matches_->size()) {
      const RefRow& candidate = right_->row((*matches_)[match_pos_++]);
      if (!KeyEquals(left_row_, left_key_, candidate, right_key_)) continue;
      if (semi_) have_left_ = false;  // first match wins; next left row
      return Emit(candidate, out);
    }
    have_left_ = false;
  }
}

// --------------------------------------------------------------- ExtendIter

Result<bool> ExtendIter::Next(RefRow* out) {
  if (refs_ == nullptr) {
    PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(var_));
    auto it = builders_->result().range_refs.find(var_);
    if (it == builders_->result().range_refs.end()) {
      return Status::Internal("no materialised range for '" + var_ + "'");
    }
    refs_ = &it->second;
  }
  if (refs_->empty()) return false;  // product with an empty range
  while (true) {
    if (!have_) {
      PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(&row_));
      if (!more) return false;
      have_ = true;
      pos_ = 0;
    }
    if (pos_ < refs_->size()) {
      *out = row_;
      out->push_back((*refs_)[pos_++]);
      if (stats_ != nullptr) ++stats_->combination_rows;
      return true;
    }
    have_ = false;
  }
}

// ------------------------------------------------------------ RangeGuardIter

Result<bool> RangeGuardIter::Next(RefRow* out) {
  if (!checked_) {
    checked_ = true;
    PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(var_));
    auto it = builders_->result().range_refs.find(var_);
    empty_ = it == builders_->result().range_refs.end() || it->second.empty();
  }
  if (empty_) return false;
  return child_->Next(out);
}

// --------------------------------------------------------------- FilterIter

Result<bool> FilterIter::Next(RefRow* out) {
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (stats_ != nullptr) ++stats_->comparisons;
    bool same = (*out)[static_cast<size_t>(left_pos_)] ==
                (*out)[static_cast<size_t>(right_pos_)];
    if (same == equal_) return true;
  }
}

// -------------------------------------------------------------- ProjectIter

ProjectIter::ProjectIter(RefIteratorPtr child, std::vector<int> positions,
                         std::vector<std::string> columns, bool dedup,
                         ExecStats* stats, PeakTracker* tracker)
    : child_(std::move(child)),
      positions_(std::move(positions)),
      dedup_(dedup),
      seen_(dedup ? RefRelation(std::move(columns)) : RefRelation()),
      stats_(stats),
      tracker_(tracker) {}

Result<bool> ProjectIter::Next(RefRow* out) {
  RefRow row;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) return false;
    RefRow projected;
    projected.reserve(positions_.size());
    for (int p : positions_) projected.push_back(row[static_cast<size_t>(p)]);
    if (dedup_) {
      if (!seen_.Add(projected)) continue;  // duplicate row, suppressed
      if (tracker_ != nullptr) tracker_->Add(1);
    }
    if (stats_ != nullptr) ++stats_->combination_rows;
    *out = std::move(projected);
    return true;
  }
}

// --------------------------------------------------------------- ConcatIter

Result<bool> ConcatIter::Next(RefRow* out) {
  while (current_ < children_.size()) {
    PASCALR_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    children_[current_].reset();  // fully drained; release its state
    ++current_;
  }
  return false;
}

// ------------------------------------------------------ QuantifierTailIter

QuantifierTailIter::QuantifierTailIter(
    RefIteratorPtr child, std::vector<QuantifiedVar> tail,
    std::vector<std::string> columns, std::vector<std::string> free_names,
    CollectionBuilders* builders, DivisionAlgorithm division,
    ExecStats* stats, PeakTracker* tracker)
    : child_(std::move(child)),
      tail_(std::move(tail)),
      columns_(std::move(columns)),
      free_names_(std::move(free_names)),
      builders_(builders),
      division_(division),
      stats_(stats),
      tracker_(tracker) {}

Status QuantifierTailIter::Materialize() {
  materialized_ = true;
  // Buffer the stream with set semantics: exactly the division input the
  // materializing path arrives at after its inner-SOME projections.
  RefRelation combined(columns_);
  RefRow row;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    if (combined.Add(std::move(row))) {
      if (tracker_ != nullptr) tracker_->Add(1);
      if (stats_ != nullptr) ++stats_->combination_rows;
    }
  }
  child_.reset();

  for (size_t i = tail_.size(); i-- > 0;) {
    const QuantifiedVar& qv = tail_[i];
    if (qv.quantifier == Quantifier::kFree) break;
    RefRelation next;
    if (qv.quantifier == Quantifier::kSome) {
      std::vector<std::string> keep;
      for (const std::string& col : combined.columns()) {
        if (col != qv.var) keep.push_back(col);
      }
      PASCALR_ASSIGN_OR_RETURN(next, Project(combined, keep, stats_));
    } else {
      PASCALR_RETURN_IF_ERROR(builders_->EnsureRange(qv.var));
      auto it = builders_->result().range_refs.find(qv.var);
      if (it == builders_->result().range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      PASCALR_ASSIGN_OR_RETURN(
          next, Divide(combined, qv.var, it->second, stats_, division_));
    }
    if (tracker_ != nullptr) {
      tracker_->Add(next.size());
      tracker_->Sub(combined.size());
    }
    combined = std::move(next);
  }

  PASCALR_ASSIGN_OR_RETURN(result_, Project(combined, free_names_, stats_));
  if (tracker_ != nullptr) {
    tracker_->Add(result_.size());
    tracker_->Sub(combined.size());
  }
  return Status::OK();
}

Result<bool> QuantifierTailIter::Next(RefRow* out) {
  if (!materialized_) PASCALR_RETURN_IF_ERROR(Materialize());
  if (pos_ >= result_.size()) {
    if (tracker_ != nullptr) tracker_->Sub(result_.size());
    result_.Clear();
    pos_ = 0;
    return false;
  }
  *out = result_.row(pos_++);
  return true;
}

}  // namespace pascalr
