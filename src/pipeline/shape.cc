#include "pipeline/shape.h"

#include <algorithm>
#include <set>

namespace pascalr {

PipelineShape AnalyzePipelineShape(const QueryPlan& plan) {
  PipelineShape shape;
  for (const QuantifiedVar& qv : plan.sf.prefix) {
    if (!plan.IsEliminated(qv.var)) shape.active.push_back(qv.Clone());
  }
  for (const QuantifiedVar& qv : shape.active) {
    if (qv.quantifier == Quantifier::kFree) {
      shape.free_names.push_back(qv.var);
    }
  }
  size_t last_all = shape.active.size();
  for (size_t i = 0; i < shape.active.size(); ++i) {
    if (shape.active[i].quantifier == Quantifier::kAll) last_all = i;
  }
  shape.has_division = last_all != shape.active.size();
  for (size_t i = 0; i < shape.active.size(); ++i) {
    const QuantifiedVar& qv = shape.active[i];
    bool survives = qv.quantifier == Quantifier::kFree ||
                    (shape.has_division && i <= last_all);
    if (survives) {
      shape.needed.push_back(qv.var);
    } else {
      shape.existential.push_back(qv.var);
    }
  }
  if (shape.has_division) {
    for (size_t i = 0; i <= last_all; ++i) {
      shape.tail.push_back(shape.active[i].Clone());
    }
  }
  return shape;
}

std::vector<bool> SemiJoinEligible(
    const JoinTree& tree,
    const std::vector<std::vector<std::string>>& input_cols,
    const PipelineShape& shape) {
  std::vector<bool> semi(tree.nodes.size(), false);
  if (tree.nodes.empty()) return semi;

  // Column sets bottom-up (pre-semi unions — conservative: a column the
  // other side would itself have semi-dropped still blocks, which only
  // costs a missed optimisation, never correctness).
  std::vector<std::set<std::string>> cols(tree.nodes.size());
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) {
      cols[i].insert(input_cols[node.input].begin(),
                     input_cols[node.input].end());
    } else {
      cols[i] = cols[static_cast<size_t>(node.left)];
      cols[i].insert(cols[static_cast<size_t>(node.right)].begin(),
                     cols[static_cast<size_t>(node.right)].end());
    }
  }

  // Columns required above each node, top-down: the conjunction's output
  // needs `shape.needed`; below a join, each side additionally needs
  // whatever the other side joins on (any shared column).
  std::vector<std::set<std::string>> required(tree.nodes.size());
  required.back().insert(shape.needed.begin(), shape.needed.end());
  for (size_t i = tree.nodes.size(); i-- > 0;) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) continue;
    size_t left = static_cast<size_t>(node.left);
    size_t right = static_cast<size_t>(node.right);
    required[left] = required[i];
    required[left].insert(cols[right].begin(), cols[right].end());
    required[right] = required[i];
    required[right].insert(cols[left].begin(), cols[left].end());
  }

  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) continue;
    size_t left = static_cast<size_t>(node.left);
    size_t right = static_cast<size_t>(node.right);
    bool eligible = true;
    bool any_extra = false;
    for (const std::string& col : cols[right]) {
      if (cols[left].count(col) > 0) continue;  // join column, kept
      any_extra = true;
      if (!shape.IsExistential(col) || required[i].count(col) > 0) {
        eligible = false;
        break;
      }
    }
    // With no extra columns the join is already a pure existence filter
    // (the probe key covers every right column, so at most one match per
    // left row); the semi flag is redundant but harmless — keep it off so
    // EXPLAIN only marks genuine column-dropping probes.
    semi[i] = eligible && any_extra;
  }
  return semi;
}

}  // namespace pascalr
