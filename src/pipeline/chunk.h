// Chunk: a column-major batch of reference rows — the unit of the
// vectorized (batch-at-a-time) pipeline contract. Operators that
// implement RefIterator::NextBatch fill one of these per virtual call
// instead of producing one RefRow per Next, turning restrictions,
// gates, semi-join marks, and projections into tight loops over Ref
// arrays: one virtual dispatch and zero per-row heap allocations per
// ~1024 rows instead of per row.
//
// Layout: `cols[c][r]` is row r's binding for column c. Selective
// operators (FilterIter) evaluate their predicate into a
// SelectionVector of qualifying row indices first, then gather the
// survivors column-by-column — the classic selection-vector shape.
//
// Capacity discipline: the puller sets `capacity` before each pull
// (the plan's batch size, propagated root-to-leaf); a filler may stop
// early — a short (even length-1) chunk does NOT signal exhaustion,
// only a false return from NextBatch does. Fillers overwrite the chunk
// completely; no state survives in it between pulls.

#ifndef PASCALR_PIPELINE_CHUNK_H_
#define PASCALR_PIPELINE_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "refstruct/ref_relation.h"

namespace pascalr {

/// Indices of qualifying rows within a chunk, in row order.
using SelectionVector = std::vector<uint32_t>;

struct Chunk {
  /// Default batch size (`SET BATCH <n>;` overrides per session): large
  /// enough to amortise virtual dispatch, small enough to stay
  /// cache-resident for typical arities.
  static constexpr size_t kDefaultRows = 1024;

  std::vector<std::vector<Ref>> cols;
  size_t rows = 0;
  size_t capacity = kDefaultRows;

  size_t arity() const { return cols.size(); }
  bool full() const { return rows >= capacity; }

  /// Drops all rows and fixes the column count (reserving `capacity`
  /// per column so the fill loops never reallocate).
  void Reset(size_t arity) {
    cols.resize(arity);
    for (std::vector<Ref>& c : cols) {
      c.clear();
      c.reserve(capacity);
    }
    rows = 0;
  }

  /// Row-at-a-time append for bridged (not-yet-vectorized) producers.
  /// The first row of an empty chunk fixes the arity.
  void AppendRow(const RefRow& row) {
    if (rows == 0 && cols.size() != row.size()) Reset(row.size());
    for (size_t c = 0; c < row.size(); ++c) cols[c].push_back(row[c]);
    ++rows;
  }

  /// Copies row r into `*out` (sized to the chunk's arity).
  void RowAt(size_t r, RefRow* out) const {
    out->resize(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) (*out)[c] = cols[c][r];
  }
};

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_CHUNK_H_
