// Static analysis of a QueryPlan's combination phase for pipelined
// (tuple-at-a-time) execution: which prefix variables survive to the
// blocking tail, which are *purely existential* — SOME-quantified inner
// to the outermost ALL, so their columns never reach a division and their
// joins may stop at the first match (EXISTS-style probes) — and which
// join-tree nodes qualify for that semi-join early termination.
//
// The compiler (compile.h), the cost model (src/cost/) and EXPLAIN
// (src/opt/explain.cc) all consume the same analysis, so executed,
// priced, and printed pipelines agree by construction.

#ifndef PASCALR_PIPELINE_SHAPE_H_
#define PASCALR_PIPELINE_SHAPE_H_

#include <string>
#include <vector>

#include "exec/plan.h"

namespace pascalr {

struct PipelineShape {
  /// The prefix minus strategy-4 eliminations, in prefix order (free
  /// variables first by construction) — §3.3's n-tuple variables.
  std::vector<QuantifiedVar> active;
  std::vector<std::string> free_names;
  /// Columns a conjunction's stream must deliver upward: the free
  /// variables plus every quantified variable up to and including the
  /// outermost ALL (division consumes whole columns, so everything outer
  /// to it must be present when the divisions run). Prefix order; the
  /// free names are its leading entries.
  std::vector<std::string> needed;
  /// Purely existential variables: SOME-quantified and inner to every
  /// ALL. Their columns are dropped before any division, so a conjunction
  /// need only witness that a binding *exists* — semi-joins and skipped
  /// range extensions, never materialised columns.
  std::vector<std::string> existential;
  /// active[0 .. last ALL], the quantifiers the blocking tail evaluates
  /// right-to-left over the buffered stream. Empty when no ALL survives —
  /// the stream then feeds a dedup sink directly.
  std::vector<QuantifiedVar> tail;
  bool has_division = false;

  bool IsExistential(const std::string& var) const {
    for (const std::string& v : existential) {
      if (v == var) return true;
    }
    return false;
  }
};

PipelineShape AnalyzePipelineShape(const QueryPlan& plan);

/// Per-node semi-join eligibility for `tree` joining inputs with the
/// given column sets (input_cols[i] matches leaf input i). An internal
/// node may emit each left row once at the first match — and drop the
/// right side's extra columns entirely — when every such column is
/// purely existential and no ancestor join needs it. Indexed like
/// tree.nodes; leaves are false.
std::vector<bool> SemiJoinEligible(
    const JoinTree& tree,
    const std::vector<std::vector<std::string>>& input_cols,
    const PipelineShape& shape);

}  // namespace pascalr

#endif  // PASCALR_PIPELINE_SHAPE_H_
