// SessionManager: the front door for serving one shared Database to many
// concurrent clients. Construction flips the database into concurrent
// serving mode (versioned relations, snapshot reads, serialised write
// statements, the shared plan cache); CreateSession() then hands out
// independent Sessions over the shared Database.
//
// Isolation model per Session:
//  - its own PlannerOptions, prepared-query registry, metrics registry,
//    tracer, and cumulative ExecStats — nothing observable is shared, so
//    two sessions' METRICS dumps never bleed into each other;
//  - every read entry point (Query / Prepare / Execute / PRINT / EXPLAIN)
//    captures a Snapshot and never blocks behind writers;
//  - every write statement runs under the database write mutex and
//    publishes atomically at commit.
//
// Sessions are NOT individually thread-safe — one thread per Session (the
// usual connection model); it is many Sessions on many threads that the
// subsystem serves. Sessions must not outlive the manager's Database.

#ifndef PASCALR_CONCURRENCY_SESSION_MANAGER_H_
#define PASCALR_CONCURRENCY_SESSION_MANAGER_H_

#include <atomic>
#include <memory>
#include <ostream>

#include "base/atomic_util.h"
#include "pascalr/session.h"

namespace pascalr {

class SessionManager {
 public:
  /// Enables concurrent serving on `db` (one-way). `db` must outlive the
  /// manager and every session it creates.
  explicit SessionManager(Database* db) : db_(db) {
    db_->EnableConcurrentServing();
  }
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// A fresh Session over the shared database. `out` receives the
  /// session's PRINT/EXPLAIN output (nullptr discards). Thread-compatible:
  /// call from any thread, use each Session from one thread at a time.
  std::unique_ptr<Session> CreateSession(std::ostream* out = nullptr) {
    RelaxedFetchAdd(sessions_created_, 1);  // pure tally
    return std::make_unique<Session>(db_, out);
  }

  Database* db() const { return db_; }
  uint64_t sessions_created() const { return RelaxedLoad(sessions_created_); }

  /// Convenience pass-throughs for serving-side observability and
  /// maintenance.
  ConcurrencyCounters::View counters() const {
    return db_->ConcurrencyCountersView();
  }
  /// BLOCKS until every live snapshot is released (it quiesces the
  /// registry): never call it from a thread that still holds a
  /// SnapshotRef or has one ambiently installed — that self-deadlocks,
  /// exactly like compacting under an open read transaction would.
  size_t Compact() { return db_->Compact(); }

 private:
  Database* const db_;
  std::atomic<uint64_t> sessions_created_{0};
};

}  // namespace pascalr

#endif  // PASCALR_CONCURRENCY_SESSION_MANAGER_H_
