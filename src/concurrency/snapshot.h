// Concurrency core: epoch-based snapshots, the registry that gates
// compaction behind an exclusive quiesce, ambient (thread-local) snapshot
// installation, and statement-level write batches.
//
// The model is MVCC-lite. Writers are serialised (one write statement at a
// time holds the Database's write mutex) but readers NEVER wait for them:
// a reader captures a Snapshot — the database version plus one published
// mod-count watermark per relation — and every scan/lookup filters slot
// versions by that watermark. A writer appends versions (storage/relation
// stamps each slot with born/died mod counts) and publishes them in one
// atomic commit step, so a snapshot either sees all of a statement's
// effects or none of them.
//
// The snapshot travels *ambiently*: ScopedSnapshotInstall puts a
// SnapshotRef into a thread_local (exactly the ScopedTracerInstall pattern
// in obs/trace.h), so the dozens of Relation::Scan/Deref/SelectByKey call
// sites across exec/, pipeline/, normalize/, and opt/ become
// snapshot-aware without plumbing a parameter through every layer. A
// Cursor captures the ambient ref at Open and re-installs it for each
// Next/Close, so a half-drained cursor keeps reading its snapshot even
// after the session has moved on.
//
// Lifetime rules: snapshots hold strong refs to their relations (a
// DROPped relation stays readable until the last snapshot over it dies)
// and register with the owning ConcurrencyState's SnapshotRegistry, whose
// Quiesce() is how compaction obtains the "no readers" window it needs to
// reclaim dead versions. Sessions/snapshots must not outlive the Database.

#ifndef PASCALR_CONCURRENCY_SNAPSHOT_H_
#define PASCALR_CONCURRENCY_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/atomic_util.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "storage/ref.h"

namespace pascalr {

class Relation;
struct ConcurrencyState;

/// Process-wide counters of concurrency events, readable without locks.
/// Surfaced through Database::ConcurrencyCountersView and the METRICS
/// dump of sessions created by a SessionManager.
struct ConcurrencyCounters {
  std::atomic<uint64_t> snapshots_taken{0};
  std::atomic<uint64_t> delta_merges{0};   ///< scans that merged a non-empty delta
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> versions_retired{0};  ///< slots reclaimed by compaction
  std::atomic<uint64_t> write_statements{0};
  std::atomic<uint64_t> shared_plan_hits{0};
  std::atomic<uint64_t> shared_plan_misses{0};

  /// Plain copyable readout.
  /// lint: thread-compatible(a per-call local copy, never shared)
  struct View {
    uint64_t snapshots_taken = 0;
    uint64_t delta_merges = 0;
    uint64_t compactions = 0;
    uint64_t versions_retired = 0;
    uint64_t write_statements = 0;
    uint64_t shared_plan_hits = 0;
    uint64_t shared_plan_misses = 0;
  };
  View Read() const {
    // Pure tallies: fields racing concurrent increments may come from
    // adjacent instants, the usual monitoring-readout contract.
    View v;
    v.snapshots_taken = RelaxedLoad(snapshots_taken);
    v.delta_merges = RelaxedLoad(delta_merges);
    v.compactions = RelaxedLoad(compactions);
    v.versions_retired = RelaxedLoad(versions_retired);
    v.write_statements = RelaxedLoad(write_statements);
    v.shared_plan_hits = RelaxedLoad(shared_plan_hits);
    v.shared_plan_misses = RelaxedLoad(shared_plan_misses);
    return v;
  }
};

/// A consistent read point: the database version and, per relation id, the
/// relation's published mod count at capture time. Immutable once built.
/// lint: thread-compatible(built privately inside SnapshotRegistry::
/// Register, then shared strictly read-only through SnapshotRef)
struct Snapshot {
  /// Database commit version at capture (every committed write statement
  /// and every catalog change bumps it by one).
  uint64_t db_version = 0;
  /// The ConcurrencyState this snapshot was captured from. A Relation
  /// consults the ambient snapshot only when the origins match, so
  /// snapshots of one Database never filter reads of another.
  const ConcurrencyState* origin = nullptr;
  /// Strong refs, indexed by RelationId; null for ids dropped before
  /// capture. Relations created after capture are simply not covered.
  std::vector<std::shared_ptr<Relation>> relations;
  /// Parallel to `relations`: each relation's published mod count.
  std::vector<uint64_t> watermarks;
  /// Parallel to `relations`: each relation's published live-element
  /// count, so cardinality() under a snapshot is O(1).
  std::vector<size_t> live_counts;

  Snapshot();
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  bool Covers(RelationId id) const {
    return id < relations.size() && relations[id] != nullptr;
  }
  /// The visibility watermark for `id` under this snapshot. 0 for ids the
  /// snapshot does not cover — such a relation did not exist at capture,
  /// so none of its versions (all born >= 1) are visible.
  uint64_t WatermarkFor(RelationId id) const {
    return Covers(id) ? watermarks[id] : 0;
  }
  size_t LiveCountFor(RelationId id) const {
    return Covers(id) ? live_counts[id] : 0;
  }
};

using SnapshotRef = std::shared_ptr<const Snapshot>;

/// Tracks live snapshots and lets compaction wait for (or test for) a
/// moment with none. Register/unregister are cheap (one mutex hop at
/// snapshot creation/destruction — never per read).
class SnapshotRegistry {
 public:
  /// Calls `build` under the registry lock (so a Quiesce can never slip
  /// between capture and registration) and wraps the result in a
  /// shared_ptr whose destruction unregisters it. Blocks while a Quiesce
  /// is in progress — the only time readers wait.
  SnapshotRef Register(
      const std::function<std::unique_ptr<const Snapshot>()>& build);

  /// Closes the gate to new snapshots, waits until every registered
  /// snapshot has been released, runs `fn` exclusively, reopens the gate.
  /// `fn` must not create or destroy snapshots (self-deadlock).
  void Quiesce(const std::function<void()>& fn);

  /// Non-blocking Quiesce: runs `fn` only if no snapshot is live right
  /// now; returns whether it ran. The automatic-compaction path uses this
  /// so a thread that itself holds a SnapshotRef can never deadlock.
  bool TryQuiesce(const std::function<void()>& fn);

  size_t ActiveCount() const;

 private:
  void Unregister();

  mutable Mutex mu_;
  CondVar cv_;
  size_t active_ GUARDED_BY(mu_) = 0;
  bool gate_closed_ GUARDED_BY(mu_) = false;
};

/// The shared concurrency state of one Database, attached to each of its
/// Relations. `serving` is the master switch: while false (the default,
/// and every existing single-threaded test), relations behave exactly as
/// before — in-place upserts, immediate slot reuse, no version retention.
/// SessionManager (or Database::EnableConcurrentServing) flips it on.
struct ConcurrencyState {
  std::atomic<bool> serving{false};
  std::atomic<uint64_t> db_version{0};
  /// Serialises commit publication against snapshot capture: a commit
  /// publishes its relations' mod counts and bumps db_version while
  /// holding this, and capture reads db_version + all watermarks while
  /// holding it — so a snapshot can never pair a version number with a
  /// half-published set of watermarks. Held for microseconds only.
  /// lint: mutex-protocol(orders the publication protocol; db_version is
  /// an atomic for unsynchronised monitoring reads and the watermarks
  /// live on the relations, so no member here is GUARDED_BY it)
  Mutex commit_mu;
  SnapshotRegistry registry;
  ConcurrencyCounters counters;
};

/// The thread-current snapshot (null when none is installed). Relations
/// check it on every read; Database::FindRelation(id) consults it so
/// dropped-but-snapshotted relations stay resolvable.
const SnapshotRef& CurrentSnapshotRef();
const Snapshot* CurrentSnapshot();

/// RAII ambient installation, nestable (a Cursor re-installs its captured
/// snapshot inside whatever the caller had current).
/// lint: thread-compatible(swaps a thread_local; never crosses threads)
class ScopedSnapshotInstall {
 public:
  explicit ScopedSnapshotInstall(SnapshotRef snap);
  ~ScopedSnapshotInstall();
  ScopedSnapshotInstall(const ScopedSnapshotInstall&) = delete;
  ScopedSnapshotInstall& operator=(const ScopedSnapshotInstall&) = delete;

 private:
  SnapshotRef prev_;
};

/// One write statement's pending publication. While a WriteBatch is
/// thread-current and serving is on, relation mutators stamp versions and
/// *defer* publication (readers keep seeing the pre-statement watermarks);
/// Commit() — or destruction — publishes every touched relation and bumps
/// db_version in one commit_mu-protected step. The committed version is
/// returned so callers (the stress test's serial oracle) can key a log of
/// statements by commit order.
/// lint: thread-compatible(owned by the one serialised write statement —
/// writers hold the database write mutex, so a batch is never shared)
class WriteBatch {
 public:
  explicit WriteBatch(ConcurrencyState* state) : state_(state) {}
  ~WriteBatch() { Commit(); }
  WriteBatch(const WriteBatch&) = delete;
  WriteBatch& operator=(const WriteBatch&) = delete;

  /// Called by Relation mutators (via the ambient lookup below).
  void Touch(Relation* rel);

  /// Publishes all touched relations and bumps db_version; idempotent.
  /// Returns the db_version this batch committed as (the pre-commit
  /// version if the batch touched nothing).
  uint64_t Commit();

  bool committed() const { return committed_; }
  const ConcurrencyState* state() const { return state_; }

 private:
  ConcurrencyState* state_;
  std::vector<Relation*> touched_;
  bool committed_ = false;
  uint64_t committed_version_ = 0;
};

/// The thread-current write batch (null outside a write statement).
WriteBatch* CurrentWriteBatch();

/// lint: thread-compatible(swaps a thread_local; never crosses threads)
class ScopedWriteBatchInstall {
 public:
  explicit ScopedWriteBatchInstall(WriteBatch* batch);
  ~ScopedWriteBatchInstall();
  ScopedWriteBatchInstall(const ScopedWriteBatchInstall&) = delete;
  ScopedWriteBatchInstall& operator=(const ScopedWriteBatchInstall&) = delete;

 private:
  WriteBatch* prev_;
};

}  // namespace pascalr

#endif  // PASCALR_CONCURRENCY_SNAPSHOT_H_
