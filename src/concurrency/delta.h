// DeltaLayer: per-relation differential bookkeeping in the rdf3x
// DifferentialIndex mold. The slot array of a serving-mode Relation is
// logically two regions:
//
//   [0, base_size)      the immutable base — the slots that existed at the
//                       last compaction. Writers never append here; they
//                       may only set `died` stamps (deletes of base rows).
//   [base_size, size)   the delta — versions appended since the last
//                       compaction (inserts and upsert-replacements).
//
// Every scan merges the two regions at read time (MergeScan below), with
// the slot born/died stamps resolving visibility inside each region; a
// scan that observes a non-empty delta counts one `delta_merges`.
// Compaction — under the SnapshotRegistry's exclusive quiesce — folds the
// delta into the base: dead versions are reclaimed, the boundary advances
// to the current size, and the counters reset.
//
// Writers mutate under the relation latch; readers only touch the atomic
// boundary/counter fields, so the merge adds no locking to scans.

#ifndef PASCALR_CONCURRENCY_DELTA_H_
#define PASCALR_CONCURRENCY_DELTA_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "base/atomic_util.h"
#include "concurrency/snapshot.h"

namespace pascalr {

class DeltaLayer {
 public:
  /// Slot index of the base/delta boundary (== size at last compaction).
  size_t base_size() const {
    return base_size_.load(std::memory_order_acquire);
  }
  /// The relation's mod count at the last compaction. Relaxed: written
  /// only inside the compaction quiesce, which fences everything.
  uint64_t base_mod() const { return RelaxedLoad(base_mod_); }

  size_t delta_inserts() const { return RelaxedLoad(delta_inserts_); }
  size_t delta_deletes() const { return RelaxedLoad(delta_deletes_); }
  bool empty() const { return delta_inserts() == 0 && delta_deletes() == 0; }

  /// Writer-side (under the relation latch): a version was appended past
  /// the boundary / a `died` stamp was set on a base-region slot.
  void NoteAppend() { RelaxedFetchAdd(delta_inserts_, 1); }
  void NoteBaseDelete() { RelaxedFetchAdd(delta_deletes_, 1); }

  /// Drives one merged scan over `published_size` slots: the base region
  /// first, then the delta. `visit(slot_index)` returns false to stop.
  /// Counts a delta merge when the scan actually sees delta slots.
  template <typename Visit>
  void MergeScan(size_t published_size, ConcurrencyCounters* counters,
                 const Visit& visit) const {
    const size_t boundary = std::min(base_size(), published_size);
    for (size_t i = 0; i < boundary; ++i) {
      if (!visit(i)) return;
    }
    if (published_size <= boundary) return;
    if (counters != nullptr) {
      RelaxedFetchAdd(counters->delta_merges, 1);  // pure tally
    }
    for (size_t i = boundary; i < published_size; ++i) {
      if (!visit(i)) return;
    }
  }

  /// Compaction epilogue (exclusive quiesce; no concurrent readers or
  /// writers): the delta is folded, the boundary moves to `new_base_size`
  /// and the deltas reset.
  void Compacted(size_t new_base_size, uint64_t mod) {
    // The release store on the boundary publishes the whole epilogue; the
    // other fields ride behind it (and the quiesce already fenced us).
    base_size_.store(new_base_size, std::memory_order_release);
    RelaxedStore(base_mod_, mod);
    RelaxedStore(delta_inserts_, 0);
    RelaxedStore(delta_deletes_, 0);
  }

 private:
  std::atomic<size_t> base_size_{0};
  std::atomic<uint64_t> base_mod_{0};
  std::atomic<size_t> delta_inserts_{0};
  std::atomic<size_t> delta_deletes_{0};
};

}  // namespace pascalr

#endif  // PASCALR_CONCURRENCY_DELTA_H_
