// SharedPlanCache: the process-wide prepared-plan cache living inside
// Database, so N sessions preparing the same selection share ONE plan
// search instead of each paying for its own. Keyed on the normalized
// selection source (calculus/printer.h FormatSelection) plus an encoding
// of the session's PlannerOptions; each entry carries the validity stamps
// the per-PreparedQuery cache already uses — catalog stats epoch,
// per-relation (name, mod_count) watermarks, and the plan-time emptiness
// verdicts of every parameter-dependent range (Lemma-1 / rule-2 safety).
//
// The cache stores plans, it does not judge them: Lookup returns the raw
// entry and the prepared layer (pascalr/prepared.cc) validates the stamps
// under ITS snapshot and bindings, clones the plan (plans are patched in
// place per execution, so sessions must never share one mutable plan
// object), and reports the outcome back through RecordHit/RecordMiss —
// which feed ConcurrencyCounters::shared_plan_{hits,misses}.
//
// Entries are immutable once inserted; a newer plan for the same key
// replaces the older one. Bounded FIFO eviction. All operations take one
// short mutex hop; nothing is held while planning.

#ifndef PASCALR_CONCURRENCY_PLAN_CACHE_H_
#define PASCALR_CONCURRENCY_PLAN_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "concurrency/snapshot.h"

namespace pascalr {

struct PlannedQuery;   // opt/planner.h
struct PlannerOptions;  // opt/planner.h

/// Stable textual encoding of every PlannerOptions field that
/// participates in plan choice — the options half of the cache key.
std::string EncodePlannerOptions(const PlannerOptions& options);

/// lint: thread-compatible(a value type — Lookup hands out copies made
/// under the cache mutex; entries are never shared by reference)
struct SharedPlanEntry {
  /// The plan as compiled (parameter slots carry the *compiling*
  /// session's bindings — adopters must clone and re-patch).
  std::shared_ptr<const PlannedQuery> planned;
  uint64_t stats_epoch = 0;
  /// Referenced relations' (name, mod_count) at plan time.
  std::vector<std::pair<std::string, uint64_t>> rel_mods;
  /// Plan-time emptiness of each parameter-carrying template range, in
  /// CollectParamRanges order (deterministic for one source string), and
  /// of each parameter-carrying plan-prefix range by prefix position. An
  /// adopter whose bindings flip any verdict must not use the plan.
  std::vector<bool> template_range_empty;
  std::vector<std::pair<size_t, bool>> plan_probes;
};

class SharedPlanCache {
 public:
  explicit SharedPlanCache(size_t capacity = 512) : capacity_(capacity) {}

  /// Copies the entry for `key` into *out. Returns false when absent.
  /// No validity judgement — the caller checks the stamps.
  bool Lookup(const std::string& key, SharedPlanEntry* out) const;

  /// Inserts (or replaces) the entry for `key`, evicting FIFO beyond
  /// capacity.
  void Insert(const std::string& key, SharedPlanEntry entry);

  /// Adoption outcome, reported by the prepared layer after validating a
  /// Lookup result (also feeds ConcurrencyCounters when attached).
  void RecordHit();
  void RecordMiss();

  void AttachCounters(ConcurrencyCounters* counters) { counters_ = counters; }

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

  /// One row per cached entry, for the sys$plan_cache system relation:
  /// the cache key plus the entry's validity-stamp shape.
  /// lint: thread-compatible(a value type — Describe builds these copies
  /// under the cache mutex and hands them out by value)
  struct Description {
    std::string key;
    uint64_t stats_epoch = 0;
    size_t relations = 0;     // rel_mods watermarks carried
    size_t param_probes = 0;  // template + plan-prefix emptiness probes
  };
  std::vector<Description> Describe() const;

  void Clear();

 private:
  void EvictIfNeededLocked() REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::map<std::string, SharedPlanEntry> entries_ GUARDED_BY(mu_);
  std::deque<std::string> insertion_order_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  /// lint: unguarded(set once by AttachCounters before concurrent use,
  /// read-only afterwards; the pointed-to counters are atomics)
  ConcurrencyCounters* counters_ = nullptr;
};

}  // namespace pascalr

#endif  // PASCALR_CONCURRENCY_PLAN_CACHE_H_
