#include "concurrency/worker_pool.h"

namespace pascalr {

void WorkerPool::Start(std::function<void(size_t)> body) {
  threads_.reserve(workers_);
  for (size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, body, i] {
      // The cursor's Open-time snapshot becomes this thread's ambient
      // read state for the whole body — every structure probe and
      // dereference inside the worker chain sees the same epoch the
      // serial drain would.
      ScopedSnapshotInstall install(snapshot_);
      body(i);
    });
  }
}

void WorkerPool::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace pascalr
