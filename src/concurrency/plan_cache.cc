#include "concurrency/plan_cache.h"

#include <algorithm>

#include "base/atomic_util.h"
#include "base/str_util.h"
#include "opt/planner.h"

namespace pascalr {

std::string EncodePlannerOptions(const PlannerOptions& o) {
  return StrFormat(
      "level=%d div=%d permidx=%d cnf=%d cost=%d ordidx=%d dp=%d dpmax=%zu "
      "bushy=%d pipe=%d coll=%d",
      static_cast<int>(o.level), static_cast<int>(o.division),
      o.use_permanent_indexes ? 1 : 0, o.use_cnf_extensions ? 1 : 0,
      o.cost_based ? 1 : 0, o.prefer_ordered_indexes ? 1 : 0,
      o.join_order_dp ? 1 : 0, o.join_dp_max_inputs, o.join_dp_bushy ? 1 : 0,
      o.pipeline ? 1 : 0, static_cast<int>(o.collection));
}

bool SharedPlanCache::Lookup(const std::string& key,
                             SharedPlanEntry* out) const {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

void SharedPlanCache::Insert(const std::string& key, SharedPlanEntry entry) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = std::move(entry);  // replace in place; keeps FIFO position
    return;
  }
  entries_.emplace(key, std::move(entry));
  insertion_order_.push_back(key);
  EvictIfNeededLocked();
}

void SharedPlanCache::EvictIfNeededLocked() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

void SharedPlanCache::RecordHit() {
  {
    MutexLock lock(mu_);
    ++hits_;
  }
  if (counters_ != nullptr) {
    RelaxedFetchAdd(counters_->shared_plan_hits, 1);
  }
}

void SharedPlanCache::RecordMiss() {
  {
    MutexLock lock(mu_);
    ++misses_;
  }
  if (counters_ != nullptr) {
    RelaxedFetchAdd(counters_->shared_plan_misses, 1);
  }
}

uint64_t SharedPlanCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t SharedPlanCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

size_t SharedPlanCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void SharedPlanCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

std::vector<SharedPlanCache::Description> SharedPlanCache::Describe() const {
  MutexLock lock(mu_);
  std::vector<Description> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Description d;
    d.key = key;
    d.stats_epoch = entry.stats_epoch;
    d.relations = entry.rel_mods.size();
    d.param_probes = entry.template_range_empty.size() + entry.plan_probes.size();
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace pascalr
