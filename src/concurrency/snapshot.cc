#include "concurrency/snapshot.h"

#include <algorithm>

#include "storage/relation.h"

namespace pascalr {

namespace {
thread_local SnapshotRef g_current_snapshot;
thread_local WriteBatch* g_current_batch = nullptr;
}  // namespace

Snapshot::Snapshot() = default;
Snapshot::~Snapshot() = default;

SnapshotRef SnapshotRegistry::Register(
    const std::function<std::unique_ptr<const Snapshot>()>& build) {
  std::unique_ptr<const Snapshot> snap;
  {
    // `build` deliberately runs under mu_ so a Quiesce can never slip in
    // between capture and registration (see the declaration comment).
    MutexLock lock(mu_);
    while (gate_closed_) cv_.Wait(mu_);
    snap = build();
    ++active_;
  }
  return SnapshotRef(snap.release(), [this](const Snapshot* s) {
    delete s;
    Unregister();
  });
}

void SnapshotRegistry::Unregister() {
  MutexLock lock(mu_);
  --active_;
  cv_.NotifyAll();
}

void SnapshotRegistry::Quiesce(const std::function<void()>& fn) {
  MutexLock lock(mu_);
  while (gate_closed_) cv_.Wait(mu_);
  gate_closed_ = true;
  while (active_ != 0) cv_.Wait(mu_);
  fn();
  gate_closed_ = false;
  cv_.NotifyAll();
}

bool SnapshotRegistry::TryQuiesce(const std::function<void()>& fn) {
  MutexLock lock(mu_);
  if (gate_closed_ || active_ != 0) return false;
  // Holding mu_ keeps Register() out for the duration of fn.
  fn();
  return true;
}

size_t SnapshotRegistry::ActiveCount() const {
  MutexLock lock(mu_);
  return active_;
}

const SnapshotRef& CurrentSnapshotRef() { return g_current_snapshot; }

const Snapshot* CurrentSnapshot() { return g_current_snapshot.get(); }

ScopedSnapshotInstall::ScopedSnapshotInstall(SnapshotRef snap)
    : prev_(std::move(g_current_snapshot)) {
  g_current_snapshot = std::move(snap);
}

ScopedSnapshotInstall::~ScopedSnapshotInstall() {
  g_current_snapshot = std::move(prev_);
}

void WriteBatch::Touch(Relation* rel) {
  if (std::find(touched_.begin(), touched_.end(), rel) == touched_.end()) {
    touched_.push_back(rel);
  }
}

uint64_t WriteBatch::Commit() {
  if (committed_) return committed_version_;
  committed_ = true;
  MutexLock lock(state_->commit_mu);
  for (Relation* rel : touched_) rel->PublishPendingVersions();
  // db_version moves only under commit_mu; the mutex provides the
  // ordering and the atomic only serves unsynchronised monitoring reads.
  if (!touched_.empty()) {
    committed_version_ = RelaxedFetchAdd(state_->db_version, 1) + 1;
    RelaxedFetchAdd(state_->counters.write_statements, 1);
  } else {
    committed_version_ = RelaxedLoad(state_->db_version);
  }
  return committed_version_;
}

WriteBatch* CurrentWriteBatch() { return g_current_batch; }

ScopedWriteBatchInstall::ScopedWriteBatchInstall(WriteBatch* batch)
    : prev_(g_current_batch) {
  g_current_batch = batch;
}

ScopedWriteBatchInstall::~ScopedWriteBatchInstall() {
  g_current_batch = prev_;
}

}  // namespace pascalr
