#include "concurrency/snapshot.h"

#include <algorithm>

#include "storage/relation.h"

namespace pascalr {

namespace {
thread_local SnapshotRef g_current_snapshot;
thread_local WriteBatch* g_current_batch = nullptr;
}  // namespace

Snapshot::Snapshot() = default;
Snapshot::~Snapshot() = default;

SnapshotRef SnapshotRegistry::Register(
    const std::function<std::unique_ptr<const Snapshot>()>& build) {
  std::unique_ptr<const Snapshot> snap;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !gate_closed_; });
    snap = build();
    ++active_;
  }
  return SnapshotRef(snap.release(), [this](const Snapshot* s) {
    delete s;
    Unregister();
  });
}

void SnapshotRegistry::Unregister() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  cv_.notify_all();
}

void SnapshotRegistry::Quiesce(const std::function<void()>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !gate_closed_; });
  gate_closed_ = true;
  cv_.wait(lock, [this] { return active_ == 0; });
  fn();
  gate_closed_ = false;
  cv_.notify_all();
}

bool SnapshotRegistry::TryQuiesce(const std::function<void()>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (gate_closed_ || active_ != 0) return false;
  // Holding mu_ keeps Register() out for the duration of fn.
  fn();
  return true;
}

size_t SnapshotRegistry::ActiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

const SnapshotRef& CurrentSnapshotRef() { return g_current_snapshot; }

const Snapshot* CurrentSnapshot() { return g_current_snapshot.get(); }

ScopedSnapshotInstall::ScopedSnapshotInstall(SnapshotRef snap)
    : prev_(std::move(g_current_snapshot)) {
  g_current_snapshot = std::move(snap);
}

ScopedSnapshotInstall::~ScopedSnapshotInstall() {
  g_current_snapshot = std::move(prev_);
}

void WriteBatch::Touch(Relation* rel) {
  if (std::find(touched_.begin(), touched_.end(), rel) == touched_.end()) {
    touched_.push_back(rel);
  }
}

uint64_t WriteBatch::Commit() {
  if (committed_) return committed_version_;
  committed_ = true;
  std::lock_guard<std::mutex> lock(state_->commit_mu);
  for (Relation* rel : touched_) rel->PublishPendingVersions();
  if (!touched_.empty()) {
    committed_version_ =
        state_->db_version.fetch_add(1, std::memory_order_relaxed) + 1;
    state_->counters.write_statements.fetch_add(1, std::memory_order_relaxed);
  } else {
    committed_version_ = state_->db_version.load(std::memory_order_relaxed);
  }
  return committed_version_;
}

WriteBatch* CurrentWriteBatch() { return g_current_batch; }

ScopedWriteBatchInstall::ScopedWriteBatchInstall(WriteBatch* batch)
    : prev_(g_current_batch) {
  g_current_batch = batch;
}

ScopedWriteBatchInstall::~ScopedWriteBatchInstall() {
  g_current_batch = prev_;
}

}  // namespace pascalr
