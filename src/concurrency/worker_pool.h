// WorkerPool: the intra-query parallel drain's thread crew. Owns N
// std::threads for the lifetime of one morsel-driven drain (spawned at
// the first pull, joined at exhaustion or early close) and installs the
// owning cursor's snapshot on every worker before its body runs — the
// snapshot/epoch rule that makes a parallel drain read exactly the
// Open-time database state, concurrent-session writers notwithstanding
// (the SnapshotRef copies shared ownership, so workers also keep
// dropped relations and unreclaimed versions alive for the drain).
//
// Deliberately minimal: no task queue, no reuse across drains. Morsel
// dispatch, result ordering, and back-pressure live with the pipeline
// operator (src/pipeline/parallel.cc); the pool only carries threads
// and the snapshot discipline.

#ifndef PASCALR_CONCURRENCY_WORKER_POOL_H_
#define PASCALR_CONCURRENCY_WORKER_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "concurrency/snapshot.h"

namespace pascalr {

/// lint: thread-compatible(owned and driven — Start, Join, destruction —
/// by the single consumer thread; worker threads run the supplied body
/// but never touch the pool object itself)
class WorkerPool {
 public:
  /// `snapshot` may be null (concurrent serving off): workers then run
  /// with no ambient snapshot, exactly like the serial drain.
  WorkerPool(size_t workers, SnapshotRef snapshot)
      : workers_(workers), snapshot_(std::move(snapshot)) {}
  ~WorkerPool() { Join(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches the worker threads; `body(i)` runs on thread i with the
  /// pool's snapshot installed. Call at most once.
  void Start(std::function<void(size_t)> body);

  /// Blocks until every worker body returned. Idempotent. The caller
  /// must first make the bodies finish (e.g. raise a stop flag they
  /// check) — the pool never interrupts them.
  void Join();

  size_t workers() const { return workers_; }

 private:
  size_t workers_;
  SnapshotRef snapshot_;
  std::vector<std::thread> threads_;
};

}  // namespace pascalr

#endif  // PASCALR_CONCURRENCY_WORKER_POOL_H_
