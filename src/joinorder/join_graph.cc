#include "joinorder/join_graph.h"

#include <algorithm>

namespace pascalr {

EstRel JoinEstimate(const EstRel& a, const EstRel& b) {
  EstRel out;
  out.rows = a.rows * b.rows;
  for (const auto& [col, dc] : b.distinct) {
    auto it = a.distinct.find(col);
    if (it != a.distinct.end()) {
      out.rows /= std::max(1.0, std::max(it->second, dc));
    }
  }
  out.distinct = a.distinct;
  for (const auto& [col, dc] : b.distinct) {
    auto it = out.distinct.find(col);
    if (it == out.distinct.end()) {
      out.distinct[col] = dc;
    } else {
      it->second = std::min(it->second, dc);
    }
  }
  for (auto& [col, dc] : out.distinct) dc = std::min(dc, out.rows);
  return out;
}

std::vector<std::string> SharedColumns(const EstRel& a, const EstRel& b) {
  std::vector<std::string> shared;
  for (const auto& [col, dc] : b.distinct) {
    if (a.HasCol(col)) shared.push_back(col);
  }
  return shared;
}

JoinGraph::JoinGraph(const std::vector<EstRel>& inputs) {
  neighbors_.assign(inputs.size(), 0);
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t j = i + 1; j < inputs.size(); ++j) {
      if (SharedColumns(inputs[i], inputs[j]).empty()) continue;
      neighbors_[i] |= uint64_t{1} << j;
      neighbors_[j] |= uint64_t{1} << i;
    }
  }
}

bool JoinGraph::IsConnected(uint64_t mask) const {
  if (mask == 0) return true;
  uint64_t reached = mask & (~mask + 1);  // lowest set bit
  while (true) {
    uint64_t next = reached;
    for (size_t i = 0; i < neighbors_.size(); ++i) {
      if ((reached >> i) & 1) next |= neighbors_[i] & mask;
    }
    if (next == reached) break;
    reached = next;
  }
  return reached == mask;
}

}  // namespace pascalr
