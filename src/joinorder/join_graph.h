// The join-order optimizer's view of a conjunction's combination inputs
// (paper §3.3): each reference structure is summarised as an estimated
// relation — a row count plus per-column (per-variable) distinct counts —
// and joins between summaries follow the textbook containment estimate.
// The dynamic program (dp.h), the greedy heuristic (heuristics.h) and the
// cost model (src/cost/cost_model.cc) all share JoinEstimate, so planned
// trees and costed trees agree by construction.

#ifndef PASCALR_JOINORDER_JOIN_GRAPH_H_
#define PASCALR_JOINORDER_JOIN_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pascalr {

/// An estimated combination-phase relation: expected (distinct) row count
/// plus per-column distinct counts. Columns are query variable names.
struct EstRel {
  double rows = 0.0;
  std::map<std::string, double> distinct;

  bool HasCol(const std::string& c) const { return distinct.count(c) > 0; }
};

/// Estimated natural join of `a` and `b`: Cartesian rows divided by the
/// larger distinct count of every shared column (containment assumption);
/// distinct counts of shared columns take the minimum, all counts capped
/// by the output row count. With no shared column this is the Cartesian
/// product estimate.
EstRel JoinEstimate(const EstRel& a, const EstRel& b);

/// Columns bound by both sides — the natural-join columns. Empty means a
/// join of the two degenerates to a Cartesian product.
std::vector<std::string> SharedColumns(const EstRel& a, const EstRel& b);

/// Connectivity over a conjunction's inputs: node i is input i, and an
/// edge links two inputs that share a column (a variable). The DP builds
/// it once and classifies every candidate split as a join or a Cartesian
/// step with one mask intersection instead of a column-set comparison.
class JoinGraph {
 public:
  /// At most 64 inputs (bitset-indexed); callers budget far below that.
  explicit JoinGraph(const std::vector<EstRel>& inputs);

  size_t size() const { return neighbors_.size(); }

  /// Bitmask of the inputs sharing a column with input `i`.
  uint64_t Neighbors(size_t i) const { return neighbors_[i]; }

  /// True when some input in `mask` shares a column with input `j`.
  bool Connects(uint64_t mask, size_t j) const {
    return (neighbors_[j] & mask) != 0;
  }

  /// Union of the neighbor masks of every input in `mask`: joining `mask`
  /// against a subset disjoint from it is a Cartesian step iff that
  /// subset misses this mask entirely.
  uint64_t NeighborsOf(uint64_t mask) const {
    uint64_t out = 0;
    for (size_t i = 0; i < neighbors_.size(); ++i) {
      if ((mask >> i) & 1) out |= neighbors_[i];
    }
    return out;
  }

  /// True when the inputs of `mask` form one connected component.
  bool IsConnected(uint64_t mask) const;

 private:
  std::vector<uint64_t> neighbors_;
};

}  // namespace pascalr

#endif  // PASCALR_JOINORDER_JOIN_GRAPH_H_
