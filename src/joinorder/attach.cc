#include "joinorder/attach.h"

#include <utility>
#include <vector>

#include "cost/cost_model.h"

namespace pascalr {

namespace {

/// Fresh statistics must cover every relation the conjunction's structures
/// range over; estimated leaf sizes are otherwise too coarse to justify
/// overriding the executor's actual-size greedy heuristic.
bool StatsFreshFor(const QueryPlan& plan, const Database& db,
                   const std::vector<size_t>& structure_ids) {
  for (size_t id : structure_ids) {
    for (const std::string& var : plan.structures[id].columns) {
      auto it = plan.sf.vars.find(var);
      if (it == plan.sf.vars.end() ||
          db.FindFreshStats(it->second.relation_name) == nullptr) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

size_t AttachJoinOrders(QueryPlan* plan, const Database& db,
                        const JoinOrderOptions& options,
                        CollectionCost* cost_cache) {
  plan->join_trees.clear();
  if (plan->conj_inputs.empty()) return 0;

  std::vector<EstRel> structures;
  bool have_structures = false;
  size_t attached = 0;
  plan->join_trees.assign(plan->conj_inputs.size(), JoinTree());
  for (size_t c = 0; c < plan->conj_inputs.size(); ++c) {
    const std::vector<size_t>& ids = plan->conj_inputs[c];
    if (ids.size() < 3 || ids.size() > options.dp_max_inputs) continue;
    if (!StatsFreshFor(*plan, db, ids)) continue;
    if (!have_structures) {
      if (cost_cache != nullptr && cost_cache->valid) {
        structures = cost_cache->structures;
      } else {
        structures = EstimateStructureSizes(*plan, db, cost_cache);
      }
      have_structures = true;
    }
    std::vector<EstRel> inputs;
    inputs.reserve(ids.size());
    for (size_t id : ids) inputs.push_back(structures[id]);
    JoinOrderDecision decision = ChooseJoinOrder(inputs, options);
    if (decision.tree.empty()) continue;
    plan->join_trees[c] = std::move(decision.tree);
    ++attached;
  }
  if (attached == 0) plan->join_trees.clear();
  return attached;
}

}  // namespace pascalr
