// Selinger-style join-order enumeration over one conjunction's
// combination inputs: a dynamic program over bitset-indexed subsets of
// the inputs, costing each candidate join with the shared JoinEstimate
// and keeping the cheapest tree per subset. Left-deep by default (the
// classical System R space); bushy trees behind a flag. Cartesian steps
// are admitted — disconnected conjunctions need them — but penalized so
// the DP defers them exactly like the executor's greedy heuristic does.

#ifndef PASCALR_JOINORDER_DP_H_
#define PASCALR_JOINORDER_DP_H_

#include <cstddef>
#include <vector>

#include "exec/plan.h"
#include "joinorder/join_graph.h"

namespace pascalr {

struct JoinOrderOptions {
  /// Conjunctions with more inputs than this skip the DP (table size is
  /// 2^n) and keep the executor's greedy fallback.
  size_t dp_max_inputs = 12;
  /// Enumerate all subset splits (bushy trees) instead of only left-deep
  /// extensions. 3^n instead of n*2^n table work.
  bool bushy = false;
  /// Multiplier on the estimated output rows of a Cartesian step, biasing
  /// the DP to defer products like the greedy heuristic unless a product
  /// is genuinely the cheapest way through a disconnected graph.
  double cross_penalty = 4.0;
  /// Minimum relative predicted improvement over greedy before the DP's
  /// order is adopted. The executor's greedy fallback re-ranks on *actual*
  /// structure sizes at run time, so overriding it on a hair-thin
  /// estimated margin trades a real information advantage for noise.
  double min_gain = 0.05;
};

/// The DP's verdict for one conjunction.
struct JoinOrderDecision {
  /// Non-empty only when the DP ran and found an order strictly cheaper
  /// than the greedy heuristic's; the planner attaches exactly these.
  JoinTree tree;
  double dp_cost = 0.0;      ///< model cost of the best DP tree
  double greedy_cost = 0.0;  ///< model cost of the greedy tree (the bar)
  size_t subsets_explored = 0;  ///< DP table entries filled
};

/// Runs the dynamic program over `inputs`. Returns an empty tree when the
/// input count exceeds options.dp_max_inputs, when fewer than three
/// inputs make order moot, or when no order beats greedy — deviating from
/// the executor's default without a predicted gain would be pure risk.
JoinOrderDecision ChooseJoinOrder(const std::vector<EstRel>& inputs,
                                  const JoinOrderOptions& options);

}  // namespace pascalr

#endif  // PASCALR_JOINORDER_DP_H_
