#include "joinorder/heuristics.h"

namespace pascalr {

JoinTree GreedyJoinOrder(const std::vector<EstRel>& inputs) {
  JoinTree tree;
  tree.source = JoinOrderSource::kGreedy;
  if (inputs.empty()) return tree;

  // `remaining` holds input positions in original order; erasing preserves
  // relative order, exactly like the executor's vector-of-pointers loop.
  std::vector<size_t> remaining;
  for (size_t i = 0; i < inputs.size(); ++i) remaining.push_back(i);

  auto add_leaf = [&](size_t input) {
    JoinTreeNode node;
    node.leaf = true;
    node.input = input;
    node.est_rows = inputs[input].rows;
    tree.nodes.push_back(std::move(node));
    return static_cast<int>(tree.nodes.size() - 1);
  };

  size_t smallest = 0;
  for (size_t i = 1; i < remaining.size(); ++i) {
    if (inputs[remaining[i]].rows < inputs[remaining[smallest]].rows) {
      smallest = i;
    }
  }
  EstRel acc = inputs[remaining[smallest]];
  int acc_node = add_leaf(remaining[smallest]);
  remaining.erase(remaining.begin() + static_cast<long>(smallest));

  while (!remaining.empty()) {
    size_t best = remaining.size();
    size_t best_connected = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      bool connected = !SharedColumns(acc, inputs[remaining[i]]).empty();
      if (connected &&
          (best_connected == remaining.size() ||
           inputs[remaining[i]].rows < inputs[remaining[best_connected]].rows)) {
        best_connected = i;
      }
      if (best == remaining.size() ||
          inputs[remaining[i]].rows < inputs[remaining[best]].rows) {
        best = i;
      }
    }
    size_t pick = best_connected != remaining.size() ? best_connected : best;
    int right_node = add_leaf(remaining[pick]);
    JoinTreeNode join;
    join.left = acc_node;
    join.right = right_node;
    join.join_columns = SharedColumns(acc, inputs[remaining[pick]]);
    acc = JoinEstimate(acc, inputs[remaining[pick]]);
    join.est_rows = acc.rows;
    tree.nodes.push_back(std::move(join));
    acc_node = static_cast<int>(tree.nodes.size() - 1);
    remaining.erase(remaining.begin() + static_cast<long>(pick));
  }
  return tree;
}

double JoinTreeCost(const JoinTree& tree, const std::vector<EstRel>& inputs,
                    double cross_penalty) {
  std::vector<EstRel> node_est(tree.nodes.size());
  double cost = 0.0;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) {
      node_est[i] = inputs[node.input];
      continue;
    }
    const EstRel& l = node_est[static_cast<size_t>(node.left)];
    const EstRel& r = node_est[static_cast<size_t>(node.right)];
    bool cross = SharedColumns(l, r).empty();
    node_est[i] = JoinEstimate(l, r);
    cost += node_est[i].rows * (cross ? cross_penalty : 1.0);
  }
  return cost;
}

}  // namespace pascalr
