#include "joinorder/dp.h"

#include <limits>

#include "joinorder/heuristics.h"

namespace pascalr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int PopCount(uint64_t mask) {
  int n = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++n;
  }
  return n;
}

/// One DP table entry: the cheapest known way to join the subset.
struct Entry {
  double cost = kInf;
  EstRel est;             ///< estimate of the winning tree for this subset
  uint64_t left = 0;      ///< winning split (left/right subset masks);
  uint64_t right = 0;     ///< both zero for singletons
};

/// Emits the winning tree for `mask` into `tree`, children first.
int EmitTree(const std::vector<Entry>& table, uint64_t mask,
             const std::vector<EstRel>& inputs, JoinTree* tree) {
  const Entry& e = table[mask];
  if (e.left == 0) {  // singleton
    JoinTreeNode leaf;
    leaf.leaf = true;
    size_t input = 0;
    while (((mask >> input) & 1) == 0) ++input;
    leaf.input = input;
    leaf.est_rows = inputs[input].rows;
    tree->nodes.push_back(std::move(leaf));
    return static_cast<int>(tree->nodes.size() - 1);
  }
  int left = EmitTree(table, e.left, inputs, tree);
  int right = EmitTree(table, e.right, inputs, tree);
  JoinTreeNode join;
  join.left = left;
  join.right = right;
  join.join_columns = SharedColumns(table[e.left].est, table[e.right].est);
  join.est_rows = e.est.rows;
  tree->nodes.push_back(std::move(join));
  return static_cast<int>(tree->nodes.size() - 1);
}

}  // namespace

JoinOrderDecision ChooseJoinOrder(const std::vector<EstRel>& inputs,
                                  const JoinOrderOptions& options) {
  JoinOrderDecision decision;
  JoinTree greedy = GreedyJoinOrder(inputs);
  decision.greedy_cost = JoinTreeCost(greedy, inputs, options.cross_penalty);
  decision.dp_cost = decision.greedy_cost;
  // With fewer than three inputs there is exactly one join (or none), so
  // every order costs the same; above the budget the table won't fit.
  if (inputs.size() < 3 || inputs.size() > options.dp_max_inputs ||
      inputs.size() > 63) {
    return decision;
  }

  const size_t n = inputs.size();
  const uint64_t full = (uint64_t{1} << n) - 1;
  const JoinGraph graph(inputs);
  std::vector<Entry> table(full + 1);
  for (size_t i = 0; i < n; ++i) {
    Entry& e = table[uint64_t{1} << i];
    e.cost = 0.0;
    e.est = inputs[i];
  }

  auto consider = [&](uint64_t left, uint64_t right) {
    const Entry& l = table[left];
    const Entry& r = table[right];
    if (l.cost == kInf || r.cost == kInf) return;
    EstRel joined = JoinEstimate(l.est, r.est);
    bool cross = (graph.NeighborsOf(left) & right) == 0;
    double cost = l.cost + r.cost +
                  joined.rows * (cross ? options.cross_penalty : 1.0);
    Entry& out = table[left | right];
    if (cost < out.cost) {
      out.cost = cost;
      out.est = std::move(joined);
      out.left = left;
      out.right = right;
    }
  };

  if (options.bushy) {
    for (uint64_t mask = 1; mask <= full; ++mask) {
      if (PopCount(mask) < 2) continue;
      ++decision.subsets_explored;
      uint64_t lowest = mask & (~mask + 1);
      // Enumerate splits with the lowest input on the left: each
      // unordered partition is seen once (JoinEstimate is symmetric).
      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if ((sub & lowest) == 0) continue;
        consider(sub, mask ^ sub);
      }
    }
  } else {
    // Left-deep: extend every reachable subset by one remaining input.
    for (uint64_t mask = 1; mask < full; ++mask) {
      if (table[mask].cost == kInf) continue;
      ++decision.subsets_explored;
      for (size_t j = 0; j < n; ++j) {
        uint64_t bit = uint64_t{1} << j;
        if ((mask & bit) != 0) continue;
        consider(mask, bit);
      }
    }
  }

  decision.dp_cost = table[full].cost;
  // The greedy order is itself a left-deep tree the DP enumerates, so
  // dp_cost <= greedy_cost always; only an order predicted meaningfully
  // cheaper is worth deviating from the executor's default for.
  if (decision.dp_cost <
      decision.greedy_cost * (1.0 - std::max(0.0, options.min_gain))) {
    decision.tree.source =
        options.bushy ? JoinOrderSource::kDpBushy : JoinOrderSource::kDp;
    EmitTree(table, full, inputs, &decision.tree);
  }
  return decision;
}

}  // namespace pascalr
