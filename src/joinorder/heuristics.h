// The greedy smallest-first join order — the combination phase's
// historical inline heuristic (exec/combination.cc), reified as a
// JoinTree so the cost model can price it and the DP can use it as the
// bar to beat. Kept as the planner's fallback when statistics are stale
// or a conjunction exceeds the DP input budget.

#ifndef PASCALR_JOINORDER_HEURISTICS_H_
#define PASCALR_JOINORDER_HEURISTICS_H_

#include <vector>

#include "exec/plan.h"
#include "joinorder/join_graph.h"

namespace pascalr {

/// Left-deep greedy order over `inputs`: start from the smallest,
/// repeatedly join the smallest remaining input that shares a column with
/// the accumulated result, and fall back to the smallest overall (a
/// genuine Cartesian step) when none connects. Tie-breaks mirror the
/// executor exactly: the first input of equal size wins. Internal nodes
/// carry JoinEstimate cardinalities and the shared join columns.
JoinTree GreedyJoinOrder(const std::vector<EstRel>& inputs);

/// Model cost of executing `tree` over `inputs`: the sum of every
/// internal node's estimated output rows (what ExecStats::combination_rows
/// measures for the join steps), with Cartesian steps scaled by
/// `cross_penalty`. Re-derives cardinalities with JoinEstimate, so trees
/// from any source are priced identically.
double JoinTreeCost(const JoinTree& tree, const std::vector<EstRel>& inputs,
                    double cross_penalty);

}  // namespace pascalr

#endif  // PASCALR_JOINORDER_HEURISTICS_H_
