// Planner-side entry point of the join-order optimizer: estimates every
// collection-phase structure's size (src/cost/), runs the Selinger DP per
// conjunction, and attaches the winning trees to the QueryPlan for the
// combination phase to execute and EXPLAIN to print.

#ifndef PASCALR_JOINORDER_ATTACH_H_
#define PASCALR_JOINORDER_ATTACH_H_

#include "catalog/database.h"
#include "cost/cost_model.h"
#include "exec/plan.h"
#include "joinorder/dp.h"

namespace pascalr {

/// Computes join trees for `plan`'s conjunctions and stores them in
/// plan->join_trees. A conjunction gets a DP tree only when it has at
/// least three inputs (order is moot below that), every relation its
/// structures range over has fresh catalog statistics, the input count is
/// within options.dp_max_inputs, and the DP found an order estimated
/// strictly cheaper than the greedy heuristic's — in every other case the
/// conjunction keeps the executor's greedy smallest-first fallback.
/// Returns the number of trees attached (join_trees is left empty when
/// zero, keeping such plans identical to pre-optimizer plans).
///
/// When `cost_cache` is non-null, the collection-phase cost walk this
/// needs is saved there (or reused from there if already valid), so the
/// plan-search driver can cost the candidate without walking the
/// collection phase a second time.
size_t AttachJoinOrders(QueryPlan* plan, const Database& db,
                        const JoinOrderOptions& options,
                        CollectionCost* cost_cache = nullptr);

}  // namespace pascalr

#endif  // PASCALR_JOINORDER_ATTACH_H_
