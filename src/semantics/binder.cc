#include "semantics/binder.h"

#include "base/counters.h"
#include "base/str_util.h"
#include "calculus/printer.h"

namespace pascalr {

std::string Binder::UniqueName(const std::string& base) {
  if (out_.vars.find(base) == out_.vars.end()) return base;
  for (int i = 1;; ++i) {
    std::string candidate = StrFormat("%s_%d", base.c_str(), i);
    if (out_.vars.find(candidate) == out_.vars.end()) return candidate;
  }
}

const Binder::ScopeEntry* Binder::LookupScope(
    const std::string& source_name) const {
  for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
    if (it->source_name == source_name) return &*it;
  }
  return nullptr;
}

Result<VarBinding> Binder::ResolveRange(const std::string& unique_name,
                                        RangeExpr* range) {
  const Relation* rel = db_->FindRelation(range->relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + range->relation + "'");
  }
  VarBinding binding;
  binding.name = unique_name;
  binding.relation_name = range->relation;
  binding.relation = rel;
  return binding;
}

Result<BoundQuery> Binder::Bind(SelectionExpr sel) {
  ++GlobalCompileCounters().binds;
  out_ = BoundQuery();
  out_.selection = std::move(sel);
  scope_.clear();

  // 1. Free variables. Duplicate free names are ambiguous, not shadowed.
  // Free variables are bound before anything else, so UniqueName never has
  // to rename them: their written names are already the unique names.
  for (RangeDecl& decl : out_.selection.free_vars) {
    if (LookupScope(decl.var) != nullptr) {
      return Status::InvalidArgument("free variable '" + decl.var +
                                     "' declared twice");
    }
    PASCALR_ASSIGN_OR_RETURN(VarBinding binding,
                             ResolveRange(decl.var, &decl.range));
    out_.vars[decl.var] = binding;
    scope_.push_back({decl.var, decl.var});
    // Extended range written by the user: bind its restriction in a scope
    // where only this variable is visible.
    if (decl.range.IsExtended()) {
      std::vector<ScopeEntry> saved;
      saved.swap(scope_);
      scope_.push_back({decl.var, decl.var});
      Status st = BindFormula(&decl.range.restriction);
      scope_.swap(saved);
      PASCALR_RETURN_IF_ERROR(st);
    }
  }

  // 2. The wff.
  if (out_.selection.wff == nullptr) out_.selection.wff = Formula::True();
  PASCALR_RETURN_IF_ERROR(BindFormula(&out_.selection.wff));

  // 3. Projection: only free variables may be projected.
  std::vector<Component> out_components;
  for (OutputComponent& oc : out_.selection.projection) {
    bool is_free = false;
    for (const RangeDecl& decl : out_.selection.free_vars) {
      if (decl.var == oc.var) {
        is_free = true;
        break;
      }
    }
    if (!is_free) {
      return Status::NotFound("projected variable '" + oc.var +
                              "' is not a free variable of the selection");
    }
    const VarBinding& binding = out_.vars[oc.var];
    int pos = binding.relation->schema().FindComponent(oc.component);
    if (pos < 0) {
      return Status::NotFound("relation '" + binding.relation_name +
                              "' has no component '" + oc.component + "'");
    }
    oc.component_pos = pos;
    out_components.push_back(
        {oc.component, binding.relation->schema().component(pos).type});
  }
  // Qualify duplicate output component names as var_component (decide on
  // the original names, then rename every member of a duplicate group).
  {
    std::vector<std::string> original;
    for (const Component& c : out_components) original.push_back(c.name);
    for (size_t i = 0; i < out_components.size(); ++i) {
      for (size_t j = 0; j < out_components.size(); ++j) {
        if (i != j && original[i] == original[j]) {
          out_components[i].name = out_.selection.projection[i].var + "_" +
                                   out_.selection.projection[i].component;
          break;
        }
      }
    }
  }
  PASCALR_ASSIGN_OR_RETURN(out_.output_schema,
                           Schema::Make(std::move(out_components), {}));
  return std::move(out_);
}

Status Binder::BindFormula(FormulaPtr* f) {
  Formula* node = f->get();
  switch (node->kind()) {
    case FormulaKind::kConst:
      return Status::OK();
    case FormulaKind::kCompare:
      return BindTerm(node, f);
    case FormulaKind::kNot: {
      // kNot owns exactly one child; bind through it.
      FormulaPtr inner = node->TakeChild();
      PASCALR_RETURN_IF_ERROR(BindFormula(&inner));
      *f = Formula::Not(std::move(inner));
      return Status::OK();
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (FormulaPtr& c : node->mutable_children()) {
        PASCALR_RETURN_IF_ERROR(BindFormula(&c));
      }
      return Status::OK();
    }
    case FormulaKind::kQuant: {
      std::string source_name = node->var();
      std::string unique = UniqueName(source_name);
      PASCALR_ASSIGN_OR_RETURN(VarBinding binding,
                               ResolveRange(unique, &node->range()));
      out_.vars[unique] = binding;
      node->set_var(unique);
      // Bind the extension (if the user wrote one) with only this variable
      // visible.
      if (node->range().IsExtended()) {
        if (source_name != unique) {
          RenameVariable(node->range().restriction.get(), source_name, unique);
        }
        std::vector<ScopeEntry> saved;
        saved.swap(scope_);
        scope_.push_back({unique, unique});
        Status st = BindFormula(&node->range().restriction);
        scope_.swap(saved);
        PASCALR_RETURN_IF_ERROR(st);
      }
      scope_.push_back({source_name, unique});
      FormulaPtr body = node->TakeChild();
      Status st = BindFormula(&body);
      scope_.pop_back();
      PASCALR_RETURN_IF_ERROR(st);
      node->ReplaceChild(std::move(body));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable formula kind");
}

Status Binder::BindOperandVar(Operand* op) {
  const ScopeEntry* entry = LookupScope(op->var);
  if (entry == nullptr) {
    return Status::NotFound("variable '" + op->var + "' is not declared");
  }
  op->var = entry->unique_name;
  const VarBinding& binding = out_.vars[op->var];
  int pos = binding.relation->schema().FindComponent(op->component);
  if (pos < 0) {
    return Status::NotFound("relation '" + binding.relation_name +
                            "' has no component '" + op->component + "'");
  }
  op->component_pos = pos;
  op->type = binding.relation->schema().component(pos).type;
  return Status::OK();
}

Status Binder::TypeCheckTerm(JoinTerm* term) {
  Operand* sides[2] = {&term->lhs, &term->rhs};
  // Resolve component operands first; their types drive literal and
  // parameter typing.
  for (Operand* op : sides) {
    if (op->is_component()) PASCALR_RETURN_IF_ERROR(BindOperandVar(op));
  }
  for (int i = 0; i < 2; ++i) {
    Operand* param = sides[i];
    Operand* other = sides[1 - i];
    if (!param->is_param()) continue;
    // A parameter takes the type of the component it is compared against;
    // comparing two parameters (or a parameter and a literal) leaves it
    // untypable and, worse, produces a variable-free term the standard
    // form cannot place — reject it here with a usable message.
    if (!other->is_component()) {
      return Status::InvalidArgument(
          "parameter $" + param->param_name +
          " must be compared against a component (not another parameter "
          "or a literal)");
    }
    auto it = out_.params.find(param->param_name);
    if (it == out_.params.end()) {
      out_.params.emplace(param->param_name, other->type);
    } else if (!it->second.CompatibleWith(other->type)) {
      return Status::TypeMismatch(
          "parameter $" + param->param_name + " is used with types " +
          it->second.ToString() + " and " + other->type.ToString());
    }
    param->type = other->type;
  }
  for (int i = 0; i < 2; ++i) {
    Operand* lit = sides[i];
    Operand* other = sides[1 - i];
    if (!lit->is_literal()) continue;
    if (!lit->enum_label.empty()) {
      if (!other->is_component() || other->type.kind() != TypeKind::kEnum) {
        return Status::TypeMismatch(
            "label '" + lit->enum_label +
            "' cannot be typed: the other operand is not an enumeration "
            "component");
      }
      int ordinal = other->type.enum_info()->OrdinalOf(lit->enum_label);
      if (ordinal < 0) {
        return Status::NotFound("'" + lit->enum_label +
                                "' is not a label of type " +
                                other->type.enum_info()->name);
      }
      lit->literal = Value::MakeEnum(ordinal);
      lit->type = other->type;
      lit->enum_label.clear();
    }
  }
  // Kind agreement.
  if (!term->lhs.type.CompatibleWith(term->rhs.type)) {
    return Status::TypeMismatch("operands of " + term->ToString() +
                                " have incompatible types " +
                                term->lhs.type.ToString() + " and " +
                                term->rhs.type.ToString());
  }
  return Status::OK();
}

Status Binder::BindTerm(Formula* node, FormulaPtr* slot) {
  PASCALR_RETURN_IF_ERROR(TypeCheckTerm(&node->term()));
  const JoinTerm& t = node->term();
  if (t.lhs.is_literal() && t.rhs.is_literal()) {
    // Constant term: fold now so later passes never see it.
    *slot = Formula::Constant(t.lhs.literal.Satisfies(t.op, t.rhs.literal));
  }
  return Status::OK();
}

}  // namespace pascalr
