// Binder: resolves a parsed selection against the catalog.
//
//  - variable ranges are resolved to relations;
//  - variables are alpha-renamed to *unique* names (PASCAL scoping allows a
//    nested SOME/ALL to shadow an outer variable), so every later pass can
//    identify a variable purely by name;
//  - component accesses get positions and types from the relation schema;
//  - bare-identifier literals are typed as enumeration labels against the
//    opposite operand;
//  - join terms are type-checked; literal-vs-literal terms fold to TRUE or
//    FALSE;
//  - the output schema of the selection is derived from the projection.

#ifndef PASCALR_SEMANTICS_BINDER_H_
#define PASCALR_SEMANTICS_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "calculus/ast.h"
#include "catalog/database.h"

namespace pascalr {

/// Resolution of one range-coupled variable.
struct VarBinding {
  std::string name;           ///< unique (post alpha-renaming)
  std::string relation_name;  ///< base relation of the range
  const Relation* relation = nullptr;
};

/// A selection ready for normalization and planning.
struct BoundQuery {
  SelectionExpr selection;
  std::map<std::string, VarBinding> vars;  ///< unique name -> binding
  Schema output_schema;
  /// Host-variable parameters (`$name`) and the types the binder derived
  /// for them from the component operands they are compared against. A
  /// query with parameters cannot be planned until values are substituted
  /// (opt/params.h); Session::Prepare is the intended entry point.
  std::map<std::string, Type> params;
};

class Binder {
 public:
  explicit Binder(const Database* db) : db_(db) {}

  /// Consumes `sel` and produces a bound query.
  Result<BoundQuery> Bind(SelectionExpr sel);

 private:
  struct ScopeEntry {
    std::string source_name;  ///< name as written
    std::string unique_name;
  };

  Result<VarBinding> ResolveRange(const std::string& unique_name,
                                  RangeExpr* range);
  Status BindFormula(FormulaPtr* f);
  Status BindTerm(Formula* node, FormulaPtr* slot);
  Status BindOperandVar(Operand* op);
  Status TypeCheckTerm(JoinTerm* term);
  std::string UniqueName(const std::string& base);
  const ScopeEntry* LookupScope(const std::string& source_name) const;

  const Database* db_;
  BoundQuery out_;
  std::vector<ScopeEntry> scope_;
};

}  // namespace pascalr

#endif  // PASCALR_SEMANTICS_BINDER_H_
