#include "exec/stats.h"

#include "base/str_util.h"

namespace pascalr {

void ExecStats::Merge(const ExecStats& o) {
  relations_read += o.relations_read;
  elements_scanned += o.elements_scanned;
  index_probes += o.index_probes;
  single_list_refs += o.single_list_refs;
  indirect_join_refs += o.indirect_join_refs;
  combination_rows += o.combination_rows;
  division_input_rows += o.division_input_rows;
  quantifier_probes += o.quantifier_probes;
  comparisons += o.comparisons;
  dereferences += o.dereferences;
  replans += o.replans;
  permanent_index_hits += o.permanent_index_hits;
  structures_built += o.structures_built;
  structure_elements_built += o.structure_elements_built;
  batches_emitted += o.batches_emitted;
  morsels_dispatched += o.morsels_dispatched;
  // A memory high-water mark, not a flow: accumulating runs keeps the
  // largest peak seen, it does not sum them.
  if (o.peak_intermediate_rows > peak_intermediate_rows) {
    peak_intermediate_rows = o.peak_intermediate_rows;
  }
}

std::string ExecStats::ToString() const {
  return StrFormat(
      "relations_read=%llu elements_scanned=%llu index_probes=%llu "
      "single_list_refs=%llu indirect_join_refs=%llu combination_rows=%llu "
      "division_input_rows=%llu quantifier_probes=%llu comparisons=%llu "
      "dereferences=%llu replans=%llu permanent_index_hits=%llu "
      "structures_built=%llu structure_elements_built=%llu "
      "batches_emitted=%llu morsels_dispatched=%llu "
      "peak_intermediate_rows=%llu",
      static_cast<unsigned long long>(relations_read),
      static_cast<unsigned long long>(elements_scanned),
      static_cast<unsigned long long>(index_probes),
      static_cast<unsigned long long>(single_list_refs),
      static_cast<unsigned long long>(indirect_join_refs),
      static_cast<unsigned long long>(combination_rows),
      static_cast<unsigned long long>(division_input_rows),
      static_cast<unsigned long long>(quantifier_probes),
      static_cast<unsigned long long>(comparisons),
      static_cast<unsigned long long>(dereferences),
      static_cast<unsigned long long>(replans),
      static_cast<unsigned long long>(permanent_index_hits),
      static_cast<unsigned long long>(structures_built),
      static_cast<unsigned long long>(structure_elements_built),
      static_cast<unsigned long long>(batches_emitted),
      static_cast<unsigned long long>(morsels_dispatched),
      static_cast<unsigned long long>(peak_intermediate_rows));
}

}  // namespace pascalr
