// QueryPlan: the compiled physical form of a standard-form query.
//
// The same plan language expresses the naive Palermo evaluation (O0) and
// every strategy level:
//
//  - each *relation scan* lists, per variable ranging over the scanned
//    relation, the emissions performed one-element-at-a-time: single
//    lists, index builds, indirect-join probes, strategy-4 value lists and
//    quantifier probes;
//  - strategy 1 shows up as *one* scan per relation carrying many actions,
//    where the naive plan has one scan per join term;
//  - strategy 2 shows up as monadic *gates* attached to emissions (and the
//    absorbed terms disappear from the combination inputs) plus mutual
//    dyadic restriction via co-probe checks;
//  - strategy 3 rewrites the standard form itself (extended ranges);
//  - strategy 4 eliminates a quantified variable: its terms are replaced
//    by a derived single list on the remaining variable, fed by a
//    ValueList probe.
//
// The combination phase consumes `conj_inputs`: for every conjunction of
// the matrix, the structure ids to join; variables of the prefix missing
// from a conjunction are supplied by Cartesian product with the variable's
// materialised range, exactly as §3.3 prescribes.

#ifndef PASCALR_EXEC_PLAN_H_
#define PASCALR_EXEC_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "calculus/ast.h"
#include "normalize/standard_form.h"
#include "refstruct/division.h"
#include "refstruct/value_list.h"

namespace pascalr {

/// Optimization levels exercised by benches and tests. Each level adds the
/// paper's strategy of the same number. kAuto is not a strategy of its
/// own: the planner enumerates candidate plans across levels 0-4 (and
/// physical knobs), costs each against catalog statistics, and executes
/// the cheapest — the chosen plan's `QueryPlan::level` is always concrete.
enum class OptLevel : int {
  kNaive = 0,      ///< Palermo baseline: term-at-a-time collection
  kParallel = 1,   ///< + S1: one scan per relation (§4.1)
  kOneStep = 2,    ///< + S2: monadic gates, mutual restriction (§4.2)
  kRangeExt = 3,   ///< + S3: extended range expressions (§4.3)
  kQuantPush = 4,  ///< + S4: collection-phase quantifiers (§4.4)
  kAuto = 5,       ///< cost-based selection over levels 0-4 (src/cost/)
};

std::string_view OptLevelToString(OptLevel level);

/// How the collection phase materialises its structures (exec/collection):
///  - kEager: every structure, index, value list and range is built before
///    combination starts (the paper's phase-1/phase-2 split, and the
///    correctness oracle);
///  - kLazy: Cursor::Open only compiles per-structure builders; population
///    happens behind Next, on demand — full materialisation at first use,
///    per-join-key population for probe-side structures, or streaming the
///    base relation without ever building the structure. Only the
///    pipelined combination mode can exploit laziness (the materializing
///    path joins everything at Open and forces a full build anyway).
enum class CollectionPolicy : uint8_t {
  kEager = 0,
  kLazy = 1,
};

inline std::string_view CollectionPolicyToString(CollectionPolicy policy) {
  return policy == CollectionPolicy::kLazy ? "lazy" : "eager";
}

/// A transient (or permanent) index to build: `var`'s range on one
/// component, restricted by monadic gates (S2).
struct IndexBuildSpec {
  size_t id = 0;
  std::string var;
  int component_pos = -1;
  bool ordered = false;              ///< B+tree instead of hash
  std::vector<JoinTerm> gates;       ///< monadic over `var`
  /// Use a fresh *permanent* catalog index when one exists instead of
  /// building a transient one (paper §3.2: "The first step can be
  /// omitted, if permanent indexes exist"). Only ungated specs qualify.
  bool try_permanent = false;
  std::string debug_name;
};

/// A strategy-4 probe against an already built value list: does
/// `x op w` hold for SOME / ALL list values w, where x is a component of
/// the element currently scanned?
struct QuantProbeGate {
  size_t value_list_id = 0;
  Quantifier quantifier = Quantifier::kSome;
  CompareOp op = CompareOp::kEq;
  int probe_component_pos = -1;  ///< on the scanned element
};

/// A strategy-4 value list: the joined component of the quantified
/// variable vn, in the cheapest sufficient mode. When eliminations
/// cascade (Example 4.7: c's list gates t's list), probe_gates carry the
/// derived predicates that restrict which elements feed the list.
struct ValueListSpec {
  size_t id = 0;
  std::string var;                   ///< vn
  int component_pos = -1;
  ValueList::Mode mode = ValueList::Mode::kFull;
  std::vector<JoinTerm> gates;       ///< monadic over vn
  std::vector<QuantProbeGate> probe_gates;  ///< cascaded derived gates
  std::string debug_name;
};

/// Output structure registry entry. Structures are reference relations
/// produced by the collection phase and consumed by the combination phase.
struct StructureDef {
  size_t id = 0;
  std::vector<std::string> columns;  ///< 1 = single list, 2 = indirect join
  std::string debug_name;
};

/// Emission of the scanned element's ref into a single list.
struct SingleListEmit {
  size_t structure_id = 0;
  std::vector<JoinTerm> gates;  ///< monadic terms over the scanned var
};

/// A secondary probe used for mutual dyadic restriction (S2): the scanned
/// element only emits if `probe_value op indexed_value` matches something.
struct ProbeCheck {
  size_t index_id = 0;
  CompareOp op = CompareOp::kEq;  ///< scanned-side value `op` indexed value
  int probe_component_pos = -1;   ///< on the scanned var
};

/// Emission of (scanned ref, matching build ref) pairs into an indirect
/// join by probing a previously built index.
struct IndirectJoinEmit {
  size_t structure_id = 0;
  size_t index_id = 0;
  CompareOp op = CompareOp::kEq;  ///< scanned value `op` indexed value
  int probe_component_pos = -1;
  bool probe_column_first = true;  ///< column order of the structure
  std::vector<JoinTerm> gates;
  std::vector<ProbeCheck> corestrictions;  ///< S2 mutual restriction
};

/// Strategy-4 emission: evaluates `Q vn (x op vn.c)` for the scanned
/// element x and emits its ref into a derived single list when the probe
/// holds.
struct QuantProbeEmit {
  size_t structure_id = 0;  ///< derived single list over the scanned var
  QuantProbeGate probe;
  std::vector<JoinTerm> gates;
};

/// Everything to do for one variable while scanning its range relation.
struct ScanAction {
  std::string var;
  std::vector<SingleListEmit> single_lists;
  std::vector<size_t> index_builds;       ///< ids into QueryPlan::indexes
  std::vector<size_t> value_list_builds;  ///< ids into QueryPlan::value_lists
  std::vector<IndirectJoinEmit> ij_emits;
  std::vector<QuantProbeEmit> quant_probes;
};

/// One pass over one relation (the unit §4.1 minimises).
struct RelationScan {
  std::string relation;
  std::vector<ScanAction> actions;
  std::string debug_label;
};

/// One node of a per-conjunction join tree. Leaves name positions within
/// the conjunction's `conj_inputs` entry; internal nodes join two earlier
/// nodes. Nodes are stored children-before-parents, so the last node is
/// the root. Trees are built by the join-order optimizer (src/joinorder/)
/// and executed bottom-up by the combination phase.
struct JoinTreeNode {
  bool leaf = false;
  size_t input = 0;  ///< leaf: position within conj_inputs[c]
  int left = -1;     ///< internal: child node ids (indices into nodes)
  int right = -1;
  /// Internal: columns the two children share (empty = Cartesian step).
  std::vector<std::string> join_columns;
  double est_rows = 0.0;  ///< estimated output cardinality (EXPLAIN, cost)
};

/// How a join tree was chosen (src/joinorder/).
enum class JoinOrderSource : uint8_t {
  kGreedy,   ///< smallest-first heuristic over estimated sizes
  kDp,       ///< Selinger dynamic program, left-deep trees
  kDpBushy,  ///< Selinger dynamic program, bushy trees admitted
};

inline std::string_view JoinOrderSourceToString(JoinOrderSource source) {
  switch (source) {
    case JoinOrderSource::kGreedy:
      return "greedy";
    case JoinOrderSource::kDp:
      return "dp";
    case JoinOrderSource::kDpBushy:
      return "dp-bushy";
  }
  return "?";
}

struct JoinTree {
  JoinOrderSource source = JoinOrderSource::kGreedy;
  std::vector<JoinTreeNode> nodes;  ///< children before parents; back = root

  bool empty() const { return nodes.empty(); }

  size_t LeafCount() const {
    size_t n = 0;
    for (const JoinTreeNode& node : nodes) {
      if (node.leaf) ++n;
    }
    return n;
  }

  /// True when this is a well-formed binary tree over exactly
  /// `num_inputs` leaves: children precede parents, every input appears
  /// on exactly one leaf, and every node except the root feeds exactly
  /// one parent (a node consumed twice — or never — would silently drop
  /// or duplicate a structure's constraint). Everything that walks a
  /// tree (executor, cost model, EXPLAIN) must check this first; plans
  /// assembled outside the optimizer fail it and fall back to greedy.
  bool Matches(size_t num_inputs) const {
    if (nodes.empty() || nodes.size() != 2 * num_inputs - 1) return false;
    std::vector<bool> seen(num_inputs, false);
    std::vector<int> child_refs(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      const JoinTreeNode& node = nodes[i];
      if (node.leaf) {
        if (node.input >= num_inputs || seen[node.input]) return false;
        seen[node.input] = true;
      } else {
        if (node.left < 0 || node.right < 0 || node.left == node.right ||
            static_cast<size_t>(node.left) >= i ||
            static_cast<size_t>(node.right) >= i) {
          return false;
        }
        ++child_refs[static_cast<size_t>(node.left)];
        ++child_refs[static_cast<size_t>(node.right)];
      }
    }
    for (bool s : seen) {
      if (!s) return false;
    }
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      if (child_refs[i] != 1) return false;
    }
    return child_refs.back() == 0;
  }
};

/// An indirect-join emission that cannot run during its variable's scan
/// (the index is built by the same scan, e.g. a self join); it runs after
/// all scans by iterating the variable's materialised range.
struct PostScanProbe {
  std::string var;
  IndirectJoinEmit emit;
};

struct QueryPlan {
  /// The (possibly strategy-3/4 rewritten) standard form this plan executes.
  StandardForm sf;
  OptLevel level = OptLevel::kNaive;

  std::vector<RelationScan> scans;
  std::vector<IndexBuildSpec> indexes;
  std::vector<ValueListSpec> value_lists;
  std::vector<StructureDef> structures;
  std::vector<PostScanProbe> post_probes;

  /// Per matrix conjunction: the structure ids whose join (extended to all
  /// prefix variables) realises it.
  std::vector<std::vector<size_t>> conj_inputs;

  /// Per matrix conjunction: an explicit join tree over `conj_inputs[c]`,
  /// attached by the join-order optimizer (src/joinorder/) when fresh
  /// statistics let it pick an order cheaper than the executor's greedy
  /// heuristic. Empty (or holding an empty tree for a conjunction) means
  /// the combination phase falls back to greedy smallest-first on actual
  /// structure sizes, exactly as before the optimizer existed.
  std::vector<JoinTree> join_trees;

  /// Prefix variables eliminated by strategy 4 (they no longer take part
  /// in combination: no product extension, no projection/division).
  std::vector<std::string> eliminated_vars;

  DivisionAlgorithm division = DivisionAlgorithm::kHash;

  /// Stream the combination phase through the join-iterator pipeline
  /// (src/pipeline/): Cursor::Open runs only the collection phase and
  /// every Next pulls one n-tuple through the iterator tree. When off (or
  /// when compilation declines a plan shape) the cursor falls back to the
  /// materializing combination path. Both modes produce the same tuple
  /// multiset after dedup.
  bool pipeline = true;

  /// Collection-phase population policy (see CollectionPolicy). Only
  /// consulted on the pipelined cursor path; the materializing paths
  /// always build eagerly.
  CollectionPolicy collection = CollectionPolicy::kEager;

  /// Rows per pipeline chunk on the batched drain (`SET BATCH <n>;`).
  /// 1 selects the exact row-at-a-time execution (the bit-identity
  /// oracle for the vectorized path); values > 1 pull column-major
  /// chunks through NextBatch. Same rows, order, and counters either
  /// way — batching only changes the call pattern.
  size_t batch_size = 1024;

  /// Worker threads for morsel-driven intra-query parallel drains
  /// (`SET PARALLEL <n>;`). 1 (the default) runs fully serial on the
  /// calling thread; >1 lets eligible conjunction chains split their
  /// driving scan into morsels across a worker pool, with an
  /// order-preserving merge that restores the serial row order
  /// bit-identically. Ineligible shapes (lazy collection, bushy trees,
  /// profiled runs, materializing fallback) run serial regardless.
  size_t parallel = 1;

  bool IsEliminated(const std::string& var) const {
    for (const std::string& v : eliminated_vars) {
      if (v == var) return true;
    }
    return false;
  }
};

}  // namespace pascalr

#endif  // PASCALR_EXEC_PLAN_H_
