#include "exec/evaluator.h"

#include "exec/combination.h"
#include "exec/construction.h"

namespace pascalr {

Result<ExecOutcome> ExecutePlan(const QueryPlan& plan, const Database& db,
                                ExecStats* stats) {
  ExecOutcome outcome;
  PASCALR_ASSIGN_OR_RETURN(outcome.collection,
                           ExecuteCollection(plan, db, stats));
  PASCALR_ASSIGN_OR_RETURN(
      RefRelation combined,
      ExecuteCombination(plan, outcome.collection, stats));
  PASCALR_ASSIGN_OR_RETURN(
      outcome.tuples, ExecuteConstruction(plan, combined, db, stats));
  return outcome;
}

}  // namespace pascalr
