// The construction phase (paper §3.3, step 3): dereferences the reference
// tuples delivered by the combination phase and projects them onto the
// component selection.

#ifndef PASCALR_EXEC_CONSTRUCTION_H_
#define PASCALR_EXEC_CONSTRUCTION_H_

#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

/// Produces the (deduplicated) result tuples in the projection's component
/// order.
Result<std::vector<Tuple>> ExecuteConstruction(const QueryPlan& plan,
                                               const RefRelation& table,
                                               const Database& db,
                                               ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_EXEC_CONSTRUCTION_H_
