// The construction phase (paper §3.3, step 3): dereferences the reference
// tuples delivered by the combination phase and projects them onto the
// component selection. Used in two modes: ExecuteConstruction materialises
// the whole (deduplicated) result, while the streaming Cursor
// (exec/cursor.h) pulls one tuple at a time through the same helpers.

#ifndef PASCALR_EXEC_CONSTRUCTION_H_
#define PASCALR_EXEC_CONSTRUCTION_H_

#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

/// Resolves the plan's projection against the combination result's
/// columns: entry i is the RefRelation column of projection component i.
Result<std::vector<int>> ResolveProjectionColumns(const QueryPlan& plan,
                                                  const RefRelation& table);

/// Same, against a bare column layout (the pipelined combination stream
/// has no materialised RefRelation to resolve against).
Result<std::vector<int>> ResolveProjectionColumns(
    const QueryPlan& plan, const std::vector<std::string>& columns);

/// Dereferences one combination row and projects it onto the component
/// selection (`column_of_var` from ResolveProjectionColumns).
Result<Tuple> ConstructRow(const QueryPlan& plan, const RefRow& row,
                           const std::vector<int>& column_of_var,
                           const Database& db, ExecStats* stats);

/// Produces the (deduplicated) result tuples in the projection's component
/// order.
Result<std::vector<Tuple>> ExecuteConstruction(const QueryPlan& plan,
                                               const RefRelation& table,
                                               const Database& db,
                                               ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_EXEC_CONSTRUCTION_H_
