// Drives a compiled QueryPlan through the three phases.

#ifndef PASCALR_EXEC_EVALUATOR_H_
#define PASCALR_EXEC_EVALUATOR_H_

#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/collection.h"
#include "exec/plan.h"

namespace pascalr {

struct ExecOutcome {
  std::vector<Tuple> tuples;
  /// Exposed for explain output and the Figure-2 example: the materialised
  /// single lists, indirect joins, indexes, and value lists.
  CollectionResult collection;
};

Result<ExecOutcome> ExecutePlan(const QueryPlan& plan, const Database& db,
                                ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_EXEC_EVALUATOR_H_
