#include "exec/naive.h"

#include <unordered_set>

#include "exec/eval_util.h"

namespace pascalr {

Status NaiveEvaluator::ForEachInRange(
    const RangeExpr& range, ExecStats* stats,
    const std::function<Result<bool>(const Ref&, const Tuple&)>& visit) {
  const Relation* rel = db_->FindRelation(range.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + range.relation + "'");
  }
  Status status = Status::OK();
  rel->Scan([&](const Ref& ref, const Tuple& tuple) {
    if (stats != nullptr) ++stats->elements_scanned;
    if (range.IsExtended() &&
        !EvalRestriction(*range.restriction, tuple, stats)) {
      return true;
    }
    Result<bool> keep_going = visit(ref, tuple);
    if (!keep_going.ok()) {
      status = keep_going.status();
      return false;
    }
    return *keep_going;
  });
  return status;
}

Result<bool> NaiveEvaluator::EvalTerm(
    const JoinTerm& term, const std::map<std::string, const Tuple*>& bindings,
    ExecStats* stats) {
  if (stats != nullptr) ++stats->comparisons;
  auto value_of = [&](const Operand& op) -> Result<Value> {
    if (op.is_literal()) return op.literal;
    auto it = bindings.find(op.var);
    if (it == bindings.end()) {
      return Status::Internal("unbound variable '" + op.var + "'");
    }
    return it->second->at(static_cast<size_t>(op.component_pos));
  };
  PASCALR_ASSIGN_OR_RETURN(Value lhs, value_of(term.lhs));
  PASCALR_ASSIGN_OR_RETURN(Value rhs, value_of(term.rhs));
  return lhs.Satisfies(term.op, rhs);
}

Result<bool> NaiveEvaluator::EvalFormula(
    const Formula& f, std::map<std::string, const Tuple*>* bindings,
    ExecStats* stats) {
  switch (f.kind()) {
    case FormulaKind::kConst:
      return f.const_value();
    case FormulaKind::kCompare:
      return EvalTerm(f.term(), *bindings, stats);
    case FormulaKind::kNot: {
      PASCALR_ASSIGN_OR_RETURN(bool v, EvalFormula(f.child(), bindings, stats));
      return !v;
    }
    case FormulaKind::kAnd: {
      for (const FormulaPtr& c : f.children()) {
        PASCALR_ASSIGN_OR_RETURN(bool v, EvalFormula(*c, bindings, stats));
        if (!v) return false;
      }
      return true;
    }
    case FormulaKind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        PASCALR_ASSIGN_OR_RETURN(bool v, EvalFormula(*c, bindings, stats));
        if (v) return true;
      }
      return false;
    }
    case FormulaKind::kQuant: {
      bool is_some = f.quantifier() == Quantifier::kSome;
      bool verdict = !is_some;  // SOME starts false, ALL starts true
      Status st = ForEachInRange(
          f.range(), stats,
          [&](const Ref&, const Tuple& tuple) -> Result<bool> {
            (*bindings)[f.var()] = &tuple;
            Result<bool> v = EvalFormula(f.child(), bindings, stats);
            bindings->erase(f.var());
            if (!v.ok()) return v;
            if (is_some && *v) {
              verdict = true;
              return false;  // witness found
            }
            if (!is_some && !*v) {
              verdict = false;
              return false;  // counterexample found
            }
            return true;
          });
      PASCALR_RETURN_IF_ERROR(st);
      return verdict;
    }
  }
  return Status::Internal("unreachable formula kind");
}

Result<std::vector<Tuple>> NaiveEvaluator::Evaluate(const BoundQuery& query,
                                                    ExecStats* stats) {
  std::vector<Tuple> out;
  std::unordered_set<Tuple, TupleHash> seen;
  std::map<std::string, const Tuple*> bindings;

  // Nested loops over the free variables, innermost evaluates the wff.
  std::function<Status(size_t)> loop = [&](size_t depth) -> Status {
    if (depth == query.selection.free_vars.size()) {
      PASCALR_ASSIGN_OR_RETURN(
          bool v, EvalFormula(*query.selection.wff, &bindings, stats));
      if (v) {
        Tuple result;
        for (const OutputComponent& oc : query.selection.projection) {
          result.Append(bindings.at(oc.var)->at(
              static_cast<size_t>(oc.component_pos)));
        }
        if (seen.insert(result).second) out.push_back(std::move(result));
      }
      return Status::OK();
    }
    const RangeDecl& decl = query.selection.free_vars[depth];
    Status inner = Status::OK();
    Status st = ForEachInRange(
        decl.range, stats,
        [&](const Ref&, const Tuple& tuple) -> Result<bool> {
          bindings[decl.var] = &tuple;
          inner = loop(depth + 1);
          bindings.erase(decl.var);
          if (!inner.ok()) return inner;
          return true;
        });
    PASCALR_RETURN_IF_ERROR(st);
    return inner;
  };
  PASCALR_RETURN_IF_ERROR(loop(0));
  return out;
}

}  // namespace pascalr
