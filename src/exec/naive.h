// NaiveEvaluator: direct nested-loop interpretation of a bound selection —
// no normalization, no reference structures, no phases. Exponential and
// slow by design; it is the *correctness oracle* every optimized plan is
// property-tested against, and the "evaluate queries directly as given by
// the user" baseline the paper contrasts with (§2).

#ifndef PASCALR_EXEC_NAIVE_H_
#define PASCALR_EXEC_NAIVE_H_

#include <map>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/stats.h"
#include "semantics/binder.h"

namespace pascalr {

class NaiveEvaluator {
 public:
  explicit NaiveEvaluator(const Database* db) : db_(db) {}

  /// Evaluates the selection, returning deduplicated result tuples.
  Result<std::vector<Tuple>> Evaluate(const BoundQuery& query,
                                      ExecStats* stats = nullptr);

  /// Evaluates a formula under the given variable bindings (element
  /// tuples). Exposed for the Lemma-1 / one-sorted test suites.
  Result<bool> EvalFormula(const Formula& f,
                           std::map<std::string, const Tuple*>* bindings,
                           ExecStats* stats = nullptr);

 private:
  Result<bool> EvalTerm(const JoinTerm& term,
                        const std::map<std::string, const Tuple*>& bindings,
                        ExecStats* stats);

  /// Iterates the (possibly extended) range.
  Status ForEachInRange(
      const RangeExpr& range, ExecStats* stats,
      const std::function<Result<bool>(const Ref&, const Tuple&)>& visit);

  const Database* db_;
};

}  // namespace pascalr

#endif  // PASCALR_EXEC_NAIVE_H_
