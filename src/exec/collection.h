// The collection phase (paper §3.3, step 1): evaluates range expressions
// and join terms, producing single lists, indirect joins, indexes, and —
// under strategy 4 — value lists and derived single lists. Performs the
// paper's "data compression (records to references) and data reduction
// (testing join terms)".

#ifndef PASCALR_EXEC_COLLECTION_H_
#define PASCALR_EXEC_COLLECTION_H_

#include <map>
#include <memory>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"
#include "refstruct/value_list.h"

namespace pascalr {

struct CollectionResult {
  /// Indexed by structure id.
  std::vector<RefRelation> structures;
  /// Materialised (possibly extended) range of every prefix variable.
  std::map<std::string, std::vector<Ref>> range_refs;
  /// Indexed by index id. Entries either point into `owned_indexes` or —
  /// when a fresh permanent catalog index was reused (paper §3.2) — into
  /// the Database, which must outlive this result.
  std::vector<ComponentIndex*> indexes;
  std::vector<std::unique_ptr<ComponentIndex>> owned_indexes;
  /// Indexed by value list id.
  std::vector<ValueList> value_lists;
};

Result<CollectionResult> ExecuteCollection(const QueryPlan& plan,
                                           const Database& db,
                                           ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_EXEC_COLLECTION_H_
