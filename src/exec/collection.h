// The collection phase (paper §3.3, step 1): evaluates range expressions
// and join terms, producing single lists, indirect joins, indexes, and —
// under strategy 4 — value lists and derived single lists. Performs the
// paper's "data compression (records to references) and data reduction
// (testing join terms)".
//
// Two population regimes share one implementation (CollectionBuilders):
//
//  - Eager (ExecuteCollection / EnsureAll): one pass over every planned
//    scan builds everything before combination starts — the paper's
//    phase-1/phase-2 split and the correctness oracle.
//  - Demand-driven (CollectionPolicy::kLazy, pipelined cursors only):
//    construction registers empty structures and the builders wait.
//    Each structure can then (a) materialise fully at first use
//    (EnsureStructure), (b) populate per requested join key
//    (KeyedMatches: dereference the key element, re-check its range
//    restriction and gates, probe the supporting indexes — an O(probe)
//    step instead of an O(relation) scan), or (c) never materialise at
//    all, streaming its base relation element-at-a-time (EvalElement
//    under a pipeline scan iterator). ExecStats::structures_built /
//    structure_elements_built make the skipped work visible.
//
// Laziness trades repeat scans for skipped builds: demanding two units of
// one planned scan at different times scans the relation twice, where the
// eager pass reads it once. Cursors that stop early win; full drains of
// small relations can lose (see README "Demand-driven collection").

#ifndef PASCALR_EXEC_COLLECTION_H_
#define PASCALR_EXEC_COLLECTION_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"
#include "refstruct/value_list.h"

namespace pascalr {

struct CollectionResult {
  /// Indexed by structure id.
  std::vector<RefRelation> structures;
  /// Materialised (possibly extended) range of every prefix variable.
  std::map<std::string, std::vector<Ref>> range_refs;
  /// Indexed by index id. Entries either point into `owned_indexes` or —
  /// when a fresh permanent catalog index was reused (paper §3.2) — into
  /// the Database, which must outlive this result.
  std::vector<ComponentIndex*> indexes;
  std::vector<std::unique_ptr<ComponentIndex>> owned_indexes;
  /// Indexed by value list id.
  std::vector<ValueList> value_lists;
};

/// The column a structure can be populated on per join key, or -1 when it
/// cannot: every emission producing the structure must scan the same
/// variable, and that variable must be one of the structure's columns —
/// then "the rows whose column holds ref r" are computable from r alone
/// (dereference, re-check restriction and gates, probe the index).
/// Derived from the plan only, so the pipeline compiler, EXPLAIN, and the
/// cost model agree on each structure's build mode by construction.
int StructureKeyedColumn(const QueryPlan& plan, size_t structure_id);

/// Per-structure lazy builders over one (plan, database) pair. Owns the
/// CollectionResult and populates it on demand; `stats` (may be null)
/// receives the work counters. Not movable: pipeline iterators hold
/// pointers into it, so cursors keep it behind a stable heap allocation.
class CollectionBuilders {
 public:
  CollectionBuilders(const QueryPlan& plan, const Database& db,
                     ExecStats* stats);
  CollectionBuilders(const CollectionBuilders&) = delete;
  CollectionBuilders& operator=(const CollectionBuilders&) = delete;

  /// The eager oracle: builds every remaining structure, index, value
  /// list and range in planned scan order — one pass per planned scan,
  /// exactly the phase-1 collection the paper describes.
  Status EnsureAll();

  /// Materialises the (possibly extended) range of `var` if needed.
  Status EnsureRange(const std::string& var);
  /// Fully materialises one structure (and its index / value-list
  /// prerequisites) if needed.
  Status EnsureStructure(size_t structure_id);
  Status EnsureIndex(size_t index_id);
  Status EnsureValueList(size_t value_list_id);

  bool structure_built(size_t structure_id) const {
    return structure_built_[structure_id];
  }
  /// Cached StructureKeyedColumn(plan, id): the per-element/keyed
  /// population capability of each structure.
  int KeyedColumn(size_t structure_id) const {
    return keyed_column_[structure_id];
  }
  bool range_built(const std::string& var) const {
    return range_built_.count(var) > 0;
  }

  /// Keyed-partial population (mode (b)): the structure's rows whose
  /// StructureKeyedColumn holds `key`, computed on first request and
  /// cached. The structure itself is never marked built. Requires
  /// StructureKeyedColumn(plan, id) >= 0.
  Result<const std::vector<RefRow>*> KeyedMatches(size_t structure_id,
                                                  const Ref& key);

  /// Builds the indexes and value lists the producers of `structure_id`
  /// probe, without touching the structure itself — the prerequisite for
  /// EvalElement / KeyedMatches.
  Status EnsureElementPrereqs(size_t structure_id);

  /// Evaluates all producers of `structure_id` against the single range
  /// element `ref` (mode (c), the streaming scan): dereferences, applies
  /// the variable's range restriction and the emission gates, probes the
  /// supporting indexes, and appends the resulting rows (deduplicated).
  /// Rows are NOT materialised into the structure and not counted as
  /// built elements. EnsureElementPrereqs must have succeeded.
  Status EvalElement(size_t structure_id, const Ref& ref,
                     std::vector<RefRow>* out);

  /// The base relation the (per-element capable) structure's producers
  /// range over — the stream source for mode (c). Requires
  /// KeyedColumn(structure_id) >= 0.
  Result<const Relation*> StructureBaseRelation(size_t structure_id) const;

  const CollectionResult& result() const { return result_; }
  const QueryPlan& plan() const { return plan_; }
  const Database& db() const { return db_; }

  /// Moves the collection structures out (Figure 2 exhibits after a
  /// drain). The builders must not be used afterwards.
  CollectionResult Release() { return std::move(result_); }

 private:
  /// One emission feeding a structure, with the variable whose relation
  /// scan produces it. Post-scan probes are producers too (scan == npos).
  struct Producer {
    enum class Kind { kSingleList, kIndirectJoin, kQuantProbe };
    Kind kind = Kind::kSingleList;
    std::string var;
    size_t scan = 0;  ///< index into plan.scans; kNoScan for post-probes
    const SingleListEmit* sl = nullptr;
    const IndirectJoinEmit* ij = nullptr;
    const QuantProbeEmit* qp = nullptr;
  };
  static constexpr size_t kNoScan = static_cast<size_t>(-1);

  /// Which emissions a filtered scan pass executes. Empty selector =
  /// everything still unbuilt (the eager pass).
  struct ScanWants {
    bool all = false;
    size_t structure = 0;   ///< valid when want_structure
    bool want_structure = false;
    size_t index = 0;
    bool want_index = false;
    size_t value_list = 0;
    bool want_value_list = false;
  };

  Status RunScanFiltered(size_t scan_index, const ScanWants& wants);
  Status RunPostProbe(const PostScanProbe& probe);

  const QueryPlan& plan_;
  const Database& db_;
  ExecStats* stats_;
  CollectionResult result_;

  std::vector<std::vector<Producer>> producers_;  ///< by structure id
  std::vector<int> keyed_column_;                 ///< by structure id

  std::vector<char> structure_built_;
  std::vector<char> index_built_;      ///< borrowed permanents start built
  std::vector<char> vl_built_;
  std::vector<char> vl_building_;      ///< cascade cycle guard
  std::vector<char> prereqs_done_;     ///< by structure id
  std::set<std::string> range_built_;
  bool all_built_ = false;

  /// Keyed-partial caches, by structure id: key ref -> matching rows.
  std::vector<std::unordered_map<Ref, std::vector<RefRow>, RefHash>>
      keyed_cache_;
};

/// The eager collection phase as a single call: builds everything and
/// returns the result (CollectionBuilders + EnsureAll + Release).
Result<CollectionResult> ExecuteCollection(const QueryPlan& plan,
                                           const Database& db,
                                           ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_EXEC_COLLECTION_H_
