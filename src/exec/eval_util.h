// Shared element-at-a-time evaluation helpers: monadic join terms and
// single-variable restriction formulas applied to one tuple.

#ifndef PASCALR_EXEC_EVAL_UTIL_H_
#define PASCALR_EXEC_EVAL_UTIL_H_

#include "calculus/ast.h"
#include "exec/stats.h"
#include "value/tuple.h"

namespace pascalr {

/// Evaluates a term whose component operands all come from the same tuple
/// (monadic terms, e.g. `e.estatus = professor` or `t.tenr = t.tcnr`).
inline bool EvalMonadicTerm(const JoinTerm& t, const Tuple& tuple,
                            ExecStats* stats) {
  if (stats != nullptr) ++stats->comparisons;
  const Value& lhs = t.lhs.is_literal()
                         ? t.lhs.literal
                         : tuple.at(static_cast<size_t>(t.lhs.component_pos));
  const Value& rhs = t.rhs.is_literal()
                         ? t.rhs.literal
                         : tuple.at(static_cast<size_t>(t.rhs.component_pos));
  return lhs.Satisfies(t.op, rhs);
}

/// Evaluates all gates; true when every one holds.
inline bool EvalGates(const std::vector<JoinTerm>& gates, const Tuple& tuple,
                      ExecStats* stats) {
  for (const JoinTerm& g : gates) {
    if (!EvalMonadicTerm(g, tuple, stats)) return false;
  }
  return true;
}

/// Evaluates a quantifier-free single-variable formula (extended-range
/// restriction) on one tuple.
inline bool EvalRestriction(const Formula& f, const Tuple& tuple,
                            ExecStats* stats) {
  switch (f.kind()) {
    case FormulaKind::kConst:
      return f.const_value();
    case FormulaKind::kCompare:
      return EvalMonadicTerm(f.term(), tuple, stats);
    case FormulaKind::kNot:
      return !EvalRestriction(f.child(), tuple, stats);
    case FormulaKind::kAnd:
      for (const FormulaPtr& c : f.children()) {
        if (!EvalRestriction(*c, tuple, stats)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) {
        if (EvalRestriction(*c, tuple, stats)) return true;
      }
      return false;
    case FormulaKind::kQuant:
      // Range restrictions are quantifier-free by construction.
      return false;
  }
  return false;
}

}  // namespace pascalr

#endif  // PASCALR_EXEC_EVAL_UTIL_H_
