#include "exec/collection.h"

#include <set>

#include "base/str_util.h"
#include "exec/eval_util.h"
#include "index/btree_index.h"
#include "index/hash_index.h"

namespace pascalr {

namespace {

/// Applies one indirect-join emission for the element (ref, tuple) of the
/// probe variable.
void RunIjEmit(const IndirectJoinEmit& emit, const Ref& ref,
               const Tuple& tuple, const CollectionResult& partial,
               RefRelation* out, ExecStats* stats) {
  if (!EvalGates(emit.gates, tuple, stats)) return;
  // Mutual restriction (S2): every co-probe must find at least one match.
  for (const ProbeCheck& check : emit.corestrictions) {
    if (stats != nullptr) ++stats->index_probes;
    const Value& x = tuple.at(static_cast<size_t>(check.probe_component_pos));
    // The index stores build-side values v; the term reads `x op v`, and
    // ComponentIndex::Probe answers `v op' x`, so mirror the operator.
    if (!partial.indexes[check.index_id]->ProbeAny(MirrorOp(check.op), x)) {
      return;
    }
  }
  if (stats != nullptr) ++stats->index_probes;
  const Value& x = tuple.at(static_cast<size_t>(emit.probe_component_pos));
  partial.indexes[emit.index_id]->Probe(
      MirrorOp(emit.op), x, [&](const Ref& build_ref) {
        RefRow row = emit.probe_column_first ? RefRow{ref, build_ref}
                                             : RefRow{build_ref, ref};
        if (out->Add(std::move(row)) && stats != nullptr) {
          stats->indirect_join_refs += 2;
        }
        return true;
      });
}

}  // namespace

Result<CollectionResult> ExecuteCollection(const QueryPlan& plan,
                                           const Database& db,
                                           ExecStats* stats) {
  CollectionResult result;
  result.structures.reserve(plan.structures.size());
  for (const StructureDef& def : plan.structures) {
    result.structures.emplace_back(def.columns);
  }
  std::vector<bool> borrowed(plan.indexes.size(), false);
  for (const IndexBuildSpec& spec : plan.indexes) {
    if (spec.try_permanent && spec.gates.empty()) {
      // Paper §3.2: "The first step can be omitted, if permanent indexes
      // exist." Reuse a fresh catalog index instead of building one.
      auto it = plan.sf.vars.find(spec.var);
      if (it != plan.sf.vars.end() && it->second.relation != nullptr) {
        const Schema& schema = it->second.relation->schema();
        const std::string& component =
            schema.component(static_cast<size_t>(spec.component_pos)).name;
        ComponentIndex* permanent =
            db.FindFreshIndex(it->second.relation_name, component);
        if (permanent != nullptr) {
          borrowed[spec.id] = true;
          result.indexes.push_back(permanent);
          if (stats != nullptr) ++stats->permanent_index_hits;
          continue;
        }
      }
    }
    if (spec.ordered) {
      result.owned_indexes.push_back(
          std::make_unique<BTreeIndex>(spec.debug_name));
    } else {
      result.owned_indexes.push_back(
          std::make_unique<HashIndex>(spec.debug_name));
    }
    result.indexes.push_back(result.owned_indexes.back().get());
  }
  for (const ValueListSpec& spec : plan.value_lists) {
    result.value_lists.emplace_back(spec.mode);
  }

  // Which scan first materialises each variable's range.
  std::set<std::string> range_done;

  for (const RelationScan& scan : plan.scans) {
    const Relation* rel = db.FindRelation(scan.relation);
    if (rel == nullptr) {
      return Status::NotFound("no relation named '" + scan.relation + "'");
    }
    std::vector<bool> collect_range(scan.actions.size());
    for (size_t a = 0; a < scan.actions.size(); ++a) {
      collect_range[a] = range_done.insert(scan.actions[a].var).second;
    }
    if (stats != nullptr) ++stats->relations_read;

    Status scan_status = Status::OK();
    rel->Scan([&](const Ref& ref, const Tuple& tuple) {
      if (stats != nullptr) ++stats->elements_scanned;
      for (size_t a = 0; a < scan.actions.size(); ++a) {
        const ScanAction& action = scan.actions[a];
        const QuantifiedVar* qv = plan.sf.FindVar(action.var);
        if (qv != nullptr && qv->range.IsExtended() &&
            !EvalRestriction(*qv->range.restriction, tuple, stats)) {
          continue;  // element outside the (extended) range of this var
        }
        if (collect_range[a]) result.range_refs[action.var].push_back(ref);

        for (const SingleListEmit& emit : action.single_lists) {
          if (!EvalGates(emit.gates, tuple, stats)) continue;
          if (result.structures[emit.structure_id].Add({ref}) &&
              stats != nullptr) {
            ++stats->single_list_refs;
          }
        }
        for (size_t index_id : action.index_builds) {
          if (borrowed[index_id]) continue;  // permanent index reused as-is
          const IndexBuildSpec& spec = plan.indexes[index_id];
          if (!EvalGates(spec.gates, tuple, stats)) continue;
          result.indexes[index_id]->Add(
              tuple.at(static_cast<size_t>(spec.component_pos)), ref);
        }
        for (size_t vl_id : action.value_list_builds) {
          const ValueListSpec& spec = plan.value_lists[vl_id];
          if (!EvalGates(spec.gates, tuple, stats)) continue;
          bool gated_out = false;
          for (const QuantProbeGate& g : spec.probe_gates) {
            if (stats != nullptr) ++stats->quantifier_probes;
            const Value& x =
                tuple.at(static_cast<size_t>(g.probe_component_pos));
            const ValueList& inner = result.value_lists[g.value_list_id];
            Result<bool> holds = g.quantifier == Quantifier::kSome
                                     ? inner.SatisfiesSome(g.op, x)
                                     : inner.SatisfiesAll(g.op, x);
            if (!holds.ok()) {
              scan_status = holds.status();
              return false;
            }
            if (!*holds) {
              gated_out = true;
              break;
            }
          }
          if (gated_out) continue;
          result.value_lists[vl_id].Add(
              tuple.at(static_cast<size_t>(spec.component_pos)));
        }
        for (const IndirectJoinEmit& emit : action.ij_emits) {
          RunIjEmit(emit, ref, tuple, result,
                    &result.structures[emit.structure_id], stats);
        }
        for (const QuantProbeEmit& emit : action.quant_probes) {
          if (!EvalGates(emit.gates, tuple, stats)) continue;
          if (stats != nullptr) ++stats->quantifier_probes;
          const Value& x =
              tuple.at(static_cast<size_t>(emit.probe.probe_component_pos));
          const ValueList& vl = result.value_lists[emit.probe.value_list_id];
          Result<bool> holds =
              emit.probe.quantifier == Quantifier::kSome
                  ? vl.SatisfiesSome(emit.probe.op, x)
                  : vl.SatisfiesAll(emit.probe.op, x);
          if (!holds.ok()) {
            scan_status = holds.status();
            return false;
          }
          if (*holds &&
              result.structures[emit.structure_id].Add({ref}) &&
              stats != nullptr) {
            ++stats->single_list_refs;
          }
        }
      }
      return true;
    });
    PASCALR_RETURN_IF_ERROR(scan_status);
  }

  // Post-scan probes (e.g. self joins): iterate the variable's range and
  // dereference — the paper's index-nested-loop over an already-collected
  // reference list.
  for (const PostScanProbe& probe : plan.post_probes) {
    auto it = result.range_refs.find(probe.var);
    if (it == result.range_refs.end()) {
      return Status::Internal("post-scan probe over uncollected range '" +
                              probe.var + "'");
    }
    for (const Ref& ref : it->second) {
      PASCALR_ASSIGN_OR_RETURN(const Tuple* tuple, db.Deref(ref));
      if (stats != nullptr) ++stats->elements_scanned;
      RunIjEmit(probe.emit, ref, *tuple, result,
                &result.structures[probe.emit.structure_id], stats);
    }
  }

  // Every prefix variable must have a materialised range (the planner
  // schedules an empty-action scan when no term touches a variable).
  for (const QuantifiedVar& qv : plan.sf.prefix) {
    if (plan.IsEliminated(qv.var)) continue;
    if (range_done.count(qv.var) == 0) {
      return Status::Internal("range of variable '" + qv.var +
                              "' was never collected");
    }
    // touch the entry so lookups are total
    result.range_refs[qv.var];
  }
  return result;
}

}  // namespace pascalr
