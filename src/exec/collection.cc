#include "exec/collection.h"

#include <algorithm>

#include "base/str_util.h"
#include "exec/eval_util.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "obs/span_names.h"
#include "obs/trace.h"

namespace pascalr {

namespace {

/// Applies one indirect-join emission for the element (ref, tuple) of the
/// probe variable, feeding every matching pair to `sink`. Shared by the
/// scan path (sink = structure Add) and the per-element lazy paths.
void ForEachIjPair(const IndirectJoinEmit& emit, const Ref& ref,
                   const Tuple& tuple, const CollectionResult& partial,
                   ExecStats* stats,
                   const std::function<void(RefRow)>& sink) {
  if (!EvalGates(emit.gates, tuple, stats)) return;
  // Mutual restriction (S2): every co-probe must find at least one match.
  for (const ProbeCheck& check : emit.corestrictions) {
    if (stats != nullptr) ++stats->index_probes;
    const Value& x = tuple.at(static_cast<size_t>(check.probe_component_pos));
    // The index stores build-side values v; the term reads `x op v`, and
    // ComponentIndex::Probe answers `v op' x`, so mirror the operator.
    if (!partial.indexes[check.index_id]->ProbeAny(MirrorOp(check.op), x)) {
      return;
    }
  }
  if (stats != nullptr) ++stats->index_probes;
  const Value& x = tuple.at(static_cast<size_t>(emit.probe_component_pos));
  partial.indexes[emit.index_id]->Probe(
      MirrorOp(emit.op), x, [&](const Ref& build_ref) {
        sink(emit.probe_column_first ? RefRow{ref, build_ref}
                                     : RefRow{build_ref, ref});
        return true;
      });
}

}  // namespace

int StructureKeyedColumn(const QueryPlan& plan, size_t structure_id) {
  const std::vector<std::string>& columns =
      plan.structures[structure_id].columns;
  std::string var;
  bool any = false;
  auto consider = [&](const std::string& v) {
    if (!any) {
      var = v;
      any = true;
      return true;
    }
    return v == var;
  };
  for (const RelationScan& scan : plan.scans) {
    for (const ScanAction& action : scan.actions) {
      for (const SingleListEmit& e : action.single_lists) {
        if (e.structure_id == structure_id && !consider(action.var)) return -1;
      }
      for (const IndirectJoinEmit& e : action.ij_emits) {
        if (e.structure_id == structure_id && !consider(action.var)) return -1;
      }
      for (const QuantProbeEmit& e : action.quant_probes) {
        if (e.structure_id == structure_id && !consider(action.var)) return -1;
      }
    }
  }
  for (const PostScanProbe& probe : plan.post_probes) {
    if (probe.emit.structure_id == structure_id && !consider(probe.var)) {
      return -1;
    }
  }
  if (!any) return -1;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == var) return static_cast<int>(i);
  }
  return -1;
}

CollectionBuilders::CollectionBuilders(const QueryPlan& plan,
                                       const Database& db, ExecStats* stats)
    : plan_(plan), db_(db), stats_(stats) {
  result_.structures.reserve(plan.structures.size());
  for (const StructureDef& def : plan.structures) {
    result_.structures.emplace_back(def.columns);
  }
  index_built_.assign(plan.indexes.size(), false);
  for (const IndexBuildSpec& spec : plan.indexes) {
    if (spec.try_permanent && spec.gates.empty()) {
      // Paper §3.2: "The first step can be omitted, if permanent indexes
      // exist." Reuse a fresh catalog index instead of building one.
      auto it = plan.sf.vars.find(spec.var);
      if (it != plan.sf.vars.end() && it->second.relation != nullptr) {
        const Schema& schema = it->second.relation->schema();
        const std::string& component =
            schema.component(static_cast<size_t>(spec.component_pos)).name;
        ComponentIndex* permanent =
            db.FindFreshIndex(it->second.relation_name, component);
        if (permanent != nullptr) {
          index_built_[spec.id] = true;
          result_.indexes.push_back(permanent);
          if (stats_ != nullptr) ++stats_->permanent_index_hits;
          continue;
        }
      }
    }
    if (spec.ordered) {
      result_.owned_indexes.push_back(
          std::make_unique<BTreeIndex>(spec.debug_name));
    } else {
      result_.owned_indexes.push_back(
          std::make_unique<HashIndex>(spec.debug_name));
    }
    result_.indexes.push_back(result_.owned_indexes.back().get());
  }
  for (const ValueListSpec& spec : plan.value_lists) {
    result_.value_lists.emplace_back(spec.mode);
  }

  structure_built_.assign(plan.structures.size(), false);
  vl_built_.assign(plan.value_lists.size(), false);
  vl_building_.assign(plan.value_lists.size(), false);
  prereqs_done_.assign(plan.structures.size(), false);
  keyed_cache_.resize(plan.structures.size());

  producers_.resize(plan.structures.size());
  for (size_t s = 0; s < plan.scans.size(); ++s) {
    for (const ScanAction& action : plan.scans[s].actions) {
      for (const SingleListEmit& e : action.single_lists) {
        producers_[e.structure_id].push_back(
            {Producer::Kind::kSingleList, action.var, s, &e, nullptr,
             nullptr});
      }
      for (const IndirectJoinEmit& e : action.ij_emits) {
        producers_[e.structure_id].push_back(
            {Producer::Kind::kIndirectJoin, action.var, s, nullptr, &e,
             nullptr});
      }
      for (const QuantProbeEmit& e : action.quant_probes) {
        producers_[e.structure_id].push_back(
            {Producer::Kind::kQuantProbe, action.var, s, nullptr, nullptr,
             &e});
      }
    }
  }
  for (const PostScanProbe& probe : plan.post_probes) {
    producers_[probe.emit.structure_id].push_back(
        {Producer::Kind::kIndirectJoin, probe.var, kNoScan, nullptr,
         &probe.emit, nullptr});
  }
  keyed_column_.resize(plan.structures.size());
  for (size_t i = 0; i < plan.structures.size(); ++i) {
    keyed_column_[i] = StructureKeyedColumn(plan, i);
  }
}

Status CollectionBuilders::RunScanFiltered(size_t scan_index,
                                           const ScanWants& wants) {
  const RelationScan& scan = plan_.scans[scan_index];
  // One span per relation pass — the paper's collection-phase unit of
  // work; a demand-driven partial pass traces the same way as an eager
  // full one, with the counters telling them apart.
  TraceSpanGuard trace_span(spans::kScan, stats_, scan.relation);
  const Relation* rel = db_.FindRelation(scan.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + scan.relation + "'");
  }
  // Which variables this pass materialises the range of: every action var
  // whose range is still missing (the range evaluation is already paid for
  // by the restriction check, so any pass over the relation collects it).
  // Claims roll back on failure — a partially collected range must not
  // pass for complete on a retried pass.
  std::vector<bool> collect_range(scan.actions.size(), false);
  std::vector<std::string> claimed;
  for (size_t a = 0; a < scan.actions.size(); ++a) {
    collect_range[a] = range_built_.insert(scan.actions[a].var).second;
    if (collect_range[a]) {
      claimed.push_back(scan.actions[a].var);
      // Touch the entry so an all-filtered range still exists in the map.
      result_.range_refs[scan.actions[a].var];
    }
  }
  if (stats_ != nullptr) ++stats_->relations_read;

  auto want_structure = [&](size_t id) {
    if (structure_built_[id]) return false;
    return wants.all || (wants.want_structure && wants.structure == id);
  };
  auto want_index = [&](size_t id) {
    if (index_built_[id]) return false;
    return wants.all || (wants.want_index && wants.index == id);
  };
  auto want_vl = [&](size_t id) {
    if (vl_built_[id]) return false;
    return wants.all || (wants.want_value_list && wants.value_list == id);
  };

  Status scan_status = Status::OK();
  rel->Scan([&](const Ref& ref, const Tuple& tuple) {
    if (stats_ != nullptr) ++stats_->elements_scanned;
    for (size_t a = 0; a < scan.actions.size(); ++a) {
      const ScanAction& action = scan.actions[a];
      const QuantifiedVar* qv = plan_.sf.FindVar(action.var);
      if (qv != nullptr && qv->range.IsExtended() &&
          !EvalRestriction(*qv->range.restriction, tuple, stats_)) {
        continue;  // element outside the (extended) range of this var
      }
      if (collect_range[a]) result_.range_refs[action.var].push_back(ref);

      for (const SingleListEmit& emit : action.single_lists) {
        if (!want_structure(emit.structure_id)) continue;
        if (!EvalGates(emit.gates, tuple, stats_)) continue;
        if (result_.structures[emit.structure_id].Add({ref}) &&
            stats_ != nullptr) {
          ++stats_->single_list_refs;
          ++stats_->structure_elements_built;
        }
      }
      for (size_t index_id : action.index_builds) {
        if (!want_index(index_id)) continue;
        const IndexBuildSpec& spec = plan_.indexes[index_id];
        if (!EvalGates(spec.gates, tuple, stats_)) continue;
        result_.indexes[index_id]->Add(
            tuple.at(static_cast<size_t>(spec.component_pos)), ref);
        if (stats_ != nullptr) ++stats_->structure_elements_built;
      }
      for (size_t vl_id : action.value_list_builds) {
        if (!want_vl(vl_id)) continue;
        const ValueListSpec& spec = plan_.value_lists[vl_id];
        if (!EvalGates(spec.gates, tuple, stats_)) continue;
        bool gated_out = false;
        for (const QuantProbeGate& g : spec.probe_gates) {
          if (stats_ != nullptr) ++stats_->quantifier_probes;
          const Value& x =
              tuple.at(static_cast<size_t>(g.probe_component_pos));
          const ValueList& inner = result_.value_lists[g.value_list_id];
          Result<bool> holds = g.quantifier == Quantifier::kSome
                                   ? inner.SatisfiesSome(g.op, x)
                                   : inner.SatisfiesAll(g.op, x);
          if (!holds.ok()) {
            scan_status = holds.status();
            return false;
          }
          if (!*holds) {
            gated_out = true;
            break;
          }
        }
        if (gated_out) continue;
        result_.value_lists[vl_id].Add(
            tuple.at(static_cast<size_t>(spec.component_pos)));
        if (stats_ != nullptr) ++stats_->structure_elements_built;
      }
      for (const IndirectJoinEmit& emit : action.ij_emits) {
        if (!want_structure(emit.structure_id)) continue;
        RefRelation* out = &result_.structures[emit.structure_id];
        ForEachIjPair(emit, ref, tuple, result_, stats_, [&](RefRow row) {
          if (out->Add(std::move(row)) && stats_ != nullptr) {
            stats_->indirect_join_refs += 2;
            ++stats_->structure_elements_built;
          }
        });
      }
      for (const QuantProbeEmit& emit : action.quant_probes) {
        if (!want_structure(emit.structure_id)) continue;
        if (!EvalGates(emit.gates, tuple, stats_)) continue;
        if (stats_ != nullptr) ++stats_->quantifier_probes;
        const Value& x =
            tuple.at(static_cast<size_t>(emit.probe.probe_component_pos));
        const ValueList& vl = result_.value_lists[emit.probe.value_list_id];
        Result<bool> holds =
            emit.probe.quantifier == Quantifier::kSome
                ? vl.SatisfiesSome(emit.probe.op, x)
                : vl.SatisfiesAll(emit.probe.op, x);
        if (!holds.ok()) {
          scan_status = holds.status();
          return false;
        }
        if (*holds && result_.structures[emit.structure_id].Add({ref}) &&
            stats_ != nullptr) {
          ++stats_->single_list_refs;
          ++stats_->structure_elements_built;
        }
      }
    }
    return true;
  });
  if (!scan_status.ok()) {
    // The pass aborted mid-scan: un-claim the ranges it was collecting
    // (their vectors are truncated). Structure/index/value-list built
    // flags were never set, so those units re-run too; their partial
    // adds are harmless — RefRelation/EvalElement deduplicate, and
    // duplicate index entries only repeat probe emissions the structure
    // Add dedups again.
    for (const std::string& var : claimed) {
      range_built_.erase(var);
      result_.range_refs.erase(var);
    }
  }
  return scan_status;
}

Status CollectionBuilders::RunPostProbe(const PostScanProbe& probe) {
  // Post-scan probes (e.g. self joins): iterate the variable's range and
  // dereference — the paper's index-nested-loop over an already-collected
  // reference list.
  PASCALR_RETURN_IF_ERROR(EnsureRange(probe.var));
  auto it = result_.range_refs.find(probe.var);
  if (it == result_.range_refs.end()) {
    return Status::Internal("post-scan probe over uncollected range '" +
                            probe.var + "'");
  }
  RefRelation* out = &result_.structures[probe.emit.structure_id];
  for (const Ref& ref : it->second) {
    PASCALR_ASSIGN_OR_RETURN(const Tuple* tuple, db_.Deref(ref));
    if (stats_ != nullptr) ++stats_->elements_scanned;
    ForEachIjPair(probe.emit, ref, *tuple, result_, stats_, [&](RefRow row) {
      if (out->Add(std::move(row)) && stats_ != nullptr) {
        stats_->indirect_join_refs += 2;
        ++stats_->structure_elements_built;
      }
    });
  }
  return Status::OK();
}

Status CollectionBuilders::EnsureAll() {
  if (all_built_) return Status::OK();
  ScanWants everything;
  everything.all = true;
  for (size_t s = 0; s < plan_.scans.size(); ++s) {
    PASCALR_RETURN_IF_ERROR(RunScanFiltered(s, everything));
  }
  for (const PostScanProbe& probe : plan_.post_probes) {
    if (structure_built_[probe.emit.structure_id]) continue;
    PASCALR_RETURN_IF_ERROR(RunPostProbe(probe));
  }
  // Every prefix variable must have a materialised range (the planner
  // schedules an empty-action scan when no term touches a variable).
  for (const QuantifiedVar& qv : plan_.sf.prefix) {
    if (plan_.IsEliminated(qv.var)) continue;
    if (range_built_.count(qv.var) == 0) {
      return Status::Internal("range of variable '" + qv.var +
                              "' was never collected");
    }
    // touch the entry so lookups are total
    result_.range_refs[qv.var];
  }
  for (size_t i = 0; i < structure_built_.size(); ++i) {
    if (!structure_built_[i]) {
      structure_built_[i] = true;
      if (stats_ != nullptr) ++stats_->structures_built;
    }
  }
  std::fill(index_built_.begin(), index_built_.end(), true);
  std::fill(vl_built_.begin(), vl_built_.end(), true);
  all_built_ = true;
  return Status::OK();
}

Status CollectionBuilders::EnsureRange(const std::string& var) {
  if (range_built_.count(var) > 0) return Status::OK();
  const QuantifiedVar* qv = plan_.sf.FindVar(var);
  if (qv == nullptr) {
    return Status::Internal("range of unknown variable '" + var + "'");
  }
  // Same planner invariant the eager pass enforces: every variable's
  // range comes from a scheduled scan (an empty-action one when no term
  // touches it). A variable no scan covers is a planner bug — error
  // loudly instead of masking it with an unplanned relation scan.
  bool scheduled = false;
  for (const RelationScan& scan : plan_.scans) {
    for (const ScanAction& action : scan.actions) {
      scheduled |= action.var == var;
    }
  }
  if (!scheduled) {
    return Status::Internal("range of variable '" + var +
                            "' was never collected");
  }
  const Relation* rel = db_.FindRelation(qv->range.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + qv->range.relation + "'");
  }
  range_built_.insert(var);
  std::vector<Ref>& refs = result_.range_refs[var];
  if (stats_ != nullptr) ++stats_->relations_read;
  rel->Scan([&](const Ref& ref, const Tuple& tuple) {
    if (stats_ != nullptr) ++stats_->elements_scanned;
    if (!qv->range.IsExtended() ||
        EvalRestriction(*qv->range.restriction, tuple, stats_)) {
      refs.push_back(ref);
    }
    return true;
  });
  return Status::OK();
}

Status CollectionBuilders::EnsureIndex(size_t index_id) {
  if (index_built_[index_id]) return Status::OK();
  TraceSpanGuard trace_span(spans::kBuildIndex, stats_,
                            plan_.indexes[index_id].debug_name);
  ScanWants wants;
  wants.want_index = true;
  wants.index = index_id;
  for (size_t s = 0; s < plan_.scans.size(); ++s) {
    bool builds_here = false;
    for (const ScanAction& action : plan_.scans[s].actions) {
      for (size_t id : action.index_builds) builds_here |= id == index_id;
    }
    if (builds_here) PASCALR_RETURN_IF_ERROR(RunScanFiltered(s, wants));
  }
  index_built_[index_id] = true;
  return Status::OK();
}

Status CollectionBuilders::EnsureValueList(size_t value_list_id) {
  if (vl_built_[value_list_id]) return Status::OK();
  if (vl_building_[value_list_id]) {
    return Status::Internal("cyclic value-list dependency");
  }
  TraceSpanGuard trace_span(spans::kBuildValueList, stats_,
                            plan_.value_lists[value_list_id].debug_name);
  vl_building_[value_list_id] = true;
  // Cascaded eliminations (Example 4.7): the gating lists feed this one,
  // so they must be complete before this list's scan runs.
  for (const QuantProbeGate& gate :
       plan_.value_lists[value_list_id].probe_gates) {
    Status st = EnsureValueList(gate.value_list_id);
    if (!st.ok()) {
      vl_building_[value_list_id] = false;
      return st;
    }
  }
  ScanWants wants;
  wants.want_value_list = true;
  wants.value_list = value_list_id;
  for (size_t s = 0; s < plan_.scans.size(); ++s) {
    bool builds_here = false;
    for (const ScanAction& action : plan_.scans[s].actions) {
      for (size_t id : action.value_list_builds) {
        builds_here |= id == value_list_id;
      }
    }
    if (builds_here) {
      Status st = RunScanFiltered(s, wants);
      if (!st.ok()) {
        vl_building_[value_list_id] = false;
        return st;
      }
    }
  }
  vl_building_[value_list_id] = false;
  vl_built_[value_list_id] = true;
  return Status::OK();
}

Status CollectionBuilders::EnsureElementPrereqs(size_t structure_id) {
  if (prereqs_done_[structure_id]) return Status::OK();
  for (const Producer& p : producers_[structure_id]) {
    switch (p.kind) {
      case Producer::Kind::kSingleList:
        break;
      case Producer::Kind::kIndirectJoin:
        PASCALR_RETURN_IF_ERROR(EnsureIndex(p.ij->index_id));
        for (const ProbeCheck& check : p.ij->corestrictions) {
          PASCALR_RETURN_IF_ERROR(EnsureIndex(check.index_id));
        }
        break;
      case Producer::Kind::kQuantProbe:
        PASCALR_RETURN_IF_ERROR(EnsureValueList(p.qp->probe.value_list_id));
        break;
    }
  }
  prereqs_done_[structure_id] = true;
  return Status::OK();
}

Status CollectionBuilders::EnsureStructure(size_t structure_id) {
  if (structure_built_[structure_id]) return Status::OK();
  TraceSpanGuard trace_span(spans::kBuildStructure, stats_,
                            plan_.structures[structure_id].debug_name);
  PASCALR_RETURN_IF_ERROR(EnsureElementPrereqs(structure_id));
  ScanWants wants;
  wants.want_structure = true;
  wants.structure = structure_id;
  for (size_t s = 0; s < plan_.scans.size(); ++s) {
    bool produces_here = false;
    for (const Producer& p : producers_[structure_id]) {
      produces_here |= p.scan == s;
    }
    if (produces_here) PASCALR_RETURN_IF_ERROR(RunScanFiltered(s, wants));
  }
  for (const PostScanProbe& probe : plan_.post_probes) {
    if (probe.emit.structure_id != structure_id) continue;
    PASCALR_RETURN_IF_ERROR(RunPostProbe(probe));
  }
  structure_built_[structure_id] = true;
  if (stats_ != nullptr) ++stats_->structures_built;
  return Status::OK();
}

Status CollectionBuilders::EvalElement(size_t structure_id, const Ref& ref,
                                       std::vector<RefRow>* out) {
  PASCALR_ASSIGN_OR_RETURN(const Tuple* tuple, db_.Deref(ref));
  if (stats_ != nullptr) ++stats_->elements_scanned;
  const std::vector<Producer>& producers = producers_[structure_id];
  if (producers.empty()) return Status::OK();
  // All producers scan the same variable (StructureKeyedColumn enforced
  // this); re-check its (possibly extended) range restriction — every ref
  // arriving as a join key already passed it, but streamed scans feed raw
  // relation elements through here.
  const QuantifiedVar* qv = plan_.sf.FindVar(producers.front().var);
  if (qv != nullptr && qv->range.IsExtended() &&
      !EvalRestriction(*qv->range.restriction, *tuple, stats_)) {
    return Status::OK();
  }
  auto append_unique = [out](RefRow row) {
    if (std::find(out->begin(), out->end(), row) == out->end()) {
      out->push_back(std::move(row));
    }
  };
  for (const Producer& p : producers) {
    switch (p.kind) {
      case Producer::Kind::kSingleList:
        if (EvalGates(p.sl->gates, *tuple, stats_)) append_unique({ref});
        break;
      case Producer::Kind::kIndirectJoin:
        ForEachIjPair(*p.ij, ref, *tuple, result_, stats_, append_unique);
        break;
      case Producer::Kind::kQuantProbe: {
        if (!EvalGates(p.qp->gates, *tuple, stats_)) break;
        if (stats_ != nullptr) ++stats_->quantifier_probes;
        const Value& x =
            tuple->at(static_cast<size_t>(p.qp->probe.probe_component_pos));
        const ValueList& vl =
            result_.value_lists[p.qp->probe.value_list_id];
        PASCALR_ASSIGN_OR_RETURN(
            bool holds, p.qp->probe.quantifier == Quantifier::kSome
                            ? vl.SatisfiesSome(p.qp->probe.op, x)
                            : vl.SatisfiesAll(p.qp->probe.op, x));
        if (holds) append_unique({ref});
        break;
      }
    }
  }
  return Status::OK();
}

Result<const Relation*> CollectionBuilders::StructureBaseRelation(
    size_t structure_id) const {
  const std::vector<Producer>& producers = producers_[structure_id];
  if (producers.empty() || keyed_column_[structure_id] < 0) {
    return Status::Internal("structure has no per-element base relation");
  }
  const QuantifiedVar* qv = plan_.sf.FindVar(producers.front().var);
  if (qv == nullptr) {
    return Status::Internal("unknown producer variable '" +
                            producers.front().var + "'");
  }
  const Relation* rel = db_.FindRelation(qv->range.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + qv->range.relation + "'");
  }
  return rel;
}

Result<const std::vector<RefRow>*> CollectionBuilders::KeyedMatches(
    size_t structure_id, const Ref& key) {
  auto& cache = keyed_cache_[structure_id];
  auto it = cache.find(key);
  if (it != cache.end()) return &it->second;
  PASCALR_RETURN_IF_ERROR(EnsureElementPrereqs(structure_id));
  std::vector<RefRow> rows;
  PASCALR_RETURN_IF_ERROR(EvalElement(structure_id, key, &rows));
  if (stats_ != nullptr) {
    // Keyed-partial rows ARE materialised (cached for re-probes): price
    // them like the eager build does, element by element. A structure
    // that is keyed-probed here and later built in full counts some
    // elements twice — deliberate: the counter measures work performed,
    // not distinct elements, and double-building is double work.
    const size_t arity = result_.structures[structure_id].arity();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (arity >= 2) {
        stats_->indirect_join_refs += 2;
      } else {
        ++stats_->single_list_refs;
      }
      ++stats_->structure_elements_built;
    }
  }
  auto inserted = cache.emplace(key, std::move(rows));
  return &inserted.first->second;
}

Result<CollectionResult> ExecuteCollection(const QueryPlan& plan,
                                           const Database& db,
                                           ExecStats* stats) {
  CollectionBuilders builders(plan, db, stats);
  PASCALR_RETURN_IF_ERROR(builders.EnsureAll());
  return builders.Release();
}

}  // namespace pascalr
