// Pull-based result cursor over a compiled plan.
//
// Pipelined mode (QueryPlan::pipeline, the default): Open compiles the
// combination phase into a join-iterator tree (src/pipeline/); every Next
// pulls ONE combination row through that tree and straight into the
// per-tuple construction helpers — dereference + projection + duplicate
// elimination on demand. Under the eager collection policy Open still
// runs the whole collection phase (paper §3.3 step 1) first; under
// CollectionPolicy::kLazy Open only *registers* per-structure builders
// and every piece of collection work — structure builds, index builds,
// range materialisation — happens behind Next, on demand. No combination
// intermediate is materialised (blocking buffers — division input, dedup
// sinks — excepted), and closing (or dropping) a partially drained
// cursor skips the remaining join work, the remaining dereferences, and
// (lazy) the never-demanded collection structures — visible through
// ExecStats::structures_built / structure_elements_built.
//
// Materializing fallback (pipeline off, or compilation declined): Open
// runs collection + combination as before and Next streams construction
// over the materialised combination result.
//
// Both modes produce the same tuple multiset after dedup; row order may
// differ between them (pipelined joins emit probe-side-major in stream
// order). A given mode is deterministic.

#ifndef PASCALR_EXEC_CURSOR_H_
#define PASCALR_EXEC_CURSOR_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "pipeline/compile.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

class PipelineProfile;  // obs/profile.h
class Tracer;           // obs/trace.h

class Cursor {
 public:
  Cursor() = default;  ///< closed cursor
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;
  Cursor(Cursor&& other) noexcept { *this = std::move(other); }
  Cursor& operator=(Cursor&& other) noexcept;
  ~Cursor() { Close(); }

  /// Compiles the execution state for the plan. Eager policy (or the
  /// materializing fallback): runs the collection phase — and, when not
  /// pipelined, the combination phase — before returning. Lazy policy on
  /// a pipelined plan: only registers collection builders; all collection
  /// work happens behind Next. The cursor shares ownership of the plan,
  /// so it stays valid even if the caller's plan cache replans meanwhile.
  /// `sink` (optional) receives this run's ExecStats exactly once, when
  /// the cursor is closed or destroyed; it must outlive the cursor.
  /// `profile` (optional, EXPLAIN ANALYZE) receives one profiled node per
  /// pipeline operator plus a construction/dedup root — or a single
  /// phase-level combination node on the materializing fallback, which
  /// has no iterator tree to instrument. It must outlive the cursor.
  /// When null (every normal query) no instrumentation is inserted.
  static Result<Cursor> Open(std::shared_ptr<const QueryPlan> plan,
                             const Database& db, ExecStats* sink = nullptr,
                             PipelineProfile* profile = nullptr);

  /// Produces the next result tuple into `*out`. Returns false when the
  /// result set is exhausted (or the cursor is closed).
  Result<bool> Next(Tuple* out);

  /// Flushes stats to the sink, tears down the iterator tree (skipping
  /// unperformed join and collection work) and releases the plan.
  /// Idempotent.
  void Close();

  bool is_open() const { return open_; }

  /// Registers a hook invoked exactly once, at Close (or destruction),
  /// with this run's final ExecStats and the number of result tuples the
  /// cursor emitted. The statement-statistics layer uses this to fold a
  /// partially drained cursor's run when the client abandons it — the
  /// fold happens at teardown, never on the row hot path.
  void set_close_hook(std::function<void(const ExecStats&, uint64_t)> hook) {
    close_hook_ = std::move(hook);
  }

  /// True when this cursor streams the combination phase through the
  /// join-iterator pipeline (false: materializing fallback).
  bool pipelined() const { return run_ != nullptr && run_->pipeline.ok(); }

  /// Work counters of this cursor's run so far (collection at Open under
  /// the eager policy, then join/construction — and lazy collection —
  /// work as Next is called).
  const ExecStats& stats() const;

  /// Collection-phase structures as materialised so far (Figure 2
  /// exhibits; complete under the eager policy, partial under lazy).
  const CollectionResult& collection() const;

  /// Moves the collection structures out (e.g. into a QueryRun after the
  /// cursor has been drained). The cursor must not be advanced afterwards.
  CollectionResult ReleaseCollection();

  /// Combination-phase output rows still to be constructed (pre-dedup).
  /// Only known on the materializing fallback; a pipelined cursor has no
  /// materialised pending set and reports 0.
  size_t rows_pending() const;

 private:
  /// Next minus the instrumentation shell (Next itself times the pull
  /// when a tracer or profile is attached).
  Result<bool> NextImpl(Tuple* out);

  /// Heap-held so the iterators' back-pointers (stats, tracker, the
  /// collection builders) survive Cursor moves.
  struct RunState {
    /// The ambient snapshot at Open (null while concurrent serving is
    /// off). Next/Close re-install it, so a half-drained cursor keeps
    /// reading its capture-time state even after the session has moved
    /// on — and holds the strong refs that keep dropped relations and
    /// unreclaimed versions alive.
    SnapshotRef snapshot;
    ExecStats stats;
    PeakTracker tracker{&stats};
    std::unique_ptr<CollectionBuilders> builders;
    CompiledPipeline pipeline;  ///< root null on the materializing path
    Chunk chunk;                ///< batched drain: current sink chunk
    size_t chunk_pos = 0;       ///< next unconstructed row of `chunk`
    RefRow scratch;             ///< reused per-row construction input
    RefRelation combined;       ///< materializing path only
    size_t row = 0;
    std::vector<int> column_of_var;
    std::unordered_set<Tuple, TupleHash> seen;

    // ---- observability (null/-1 on every untraced, unprofiled run) ----
    /// Thread-current tracer captured at Open; when set, Next accumulates
    /// drain time and Close emits one complete "drain" span (per-Next
    /// spans would dwarf the trace).
    Tracer* tracer = nullptr;
    ExecStats stats_at_open;  ///< baseline for the drain span's counters
    uint64_t drain_start_ns = 0;
    uint64_t drain_ns = 0;
    uint64_t rows_emitted = 0;
    PipelineProfile* profile = nullptr;
    int root_prof = -1;  ///< construct/dedup node (pipelined) or
                         ///< combination node (materializing)
  };

  std::shared_ptr<const QueryPlan> plan_;
  const Database* db_ = nullptr;
  ExecStats* sink_ = nullptr;
  std::function<void(const ExecStats&, uint64_t)> close_hook_;
  std::unique_ptr<RunState> run_;
  bool open_ = false;
};

}  // namespace pascalr

#endif  // PASCALR_EXEC_CURSOR_H_
