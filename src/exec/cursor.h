// Pull-based result cursor: Open runs the collection and combination
// phases of a compiled plan (reference manipulation only, paper §3.3
// steps 1-2); Next then streams the construction phase one tuple at a
// time — dereference + projection + duplicate elimination on demand —
// instead of materialising the whole result vector up front. Closing (or
// dropping) a partially drained cursor simply skips the remaining
// dereferences: the early-termination seam repeated host-program loops
// want (fetch a few elements, decide, move on).
//
// Results are tuple-identical, including order, to ExecuteConstruction
// over the same combination output.

#ifndef PASCALR_EXEC_CURSOR_H_
#define PASCALR_EXEC_CURSOR_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

class Cursor {
 public:
  Cursor() = default;  ///< closed cursor
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;
  Cursor(Cursor&& other) noexcept { *this = std::move(other); }
  Cursor& operator=(Cursor&& other) noexcept;
  ~Cursor() { Close(); }

  /// Runs collection + combination. The cursor shares ownership of the
  /// plan, so it stays valid even if the caller's plan cache replans
  /// meanwhile. `sink` (optional) receives this run's ExecStats exactly
  /// once, when the cursor is closed or destroyed; it must outlive the
  /// cursor.
  static Result<Cursor> Open(std::shared_ptr<const QueryPlan> plan,
                             const Database& db, ExecStats* sink = nullptr);

  /// Produces the next result tuple into `*out`. Returns false when the
  /// result set is exhausted (or the cursor is closed).
  Result<bool> Next(Tuple* out);

  /// Flushes stats to the sink and releases the plan. Idempotent.
  void Close();

  bool is_open() const { return open_; }

  /// Work counters of this cursor's run so far (collection + combination
  /// at Open, dereferences as Next is called).
  const ExecStats& stats() const { return stats_; }

  /// Materialised collection-phase structures (Figure 2 exhibits).
  const CollectionResult& collection() const { return collection_; }

  /// Moves the collection structures out (e.g. into a QueryRun after the
  /// cursor has been drained). The cursor must not be advanced afterwards.
  CollectionResult ReleaseCollection() { return std::move(collection_); }

  /// Combination-phase output rows still to be constructed (pre-dedup).
  size_t rows_pending() const {
    return combined_.rows().size() - std::min(row_, combined_.rows().size());
  }

 private:
  std::shared_ptr<const QueryPlan> plan_;
  const Database* db_ = nullptr;
  ExecStats* sink_ = nullptr;
  ExecStats stats_;
  CollectionResult collection_;
  RefRelation combined_;
  std::vector<int> column_of_var_;
  std::unordered_set<Tuple, TupleHash> seen_;
  size_t row_ = 0;
  bool open_ = false;
};

}  // namespace pascalr

#endif  // PASCALR_EXEC_CURSOR_H_
