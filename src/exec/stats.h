// ExecStats: work counters for query evaluation. The paper's strategies
// are justified by the work they avoid (relation reads, intermediate
// structure sizes, combination blow-up); these counters make that visible
// deterministically, independent of wall-clock noise.

#ifndef PASCALR_EXEC_STATS_H_
#define PASCALR_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace pascalr {

struct ExecStats {
  uint64_t relations_read = 0;     ///< number of relation scans started
  uint64_t elements_scanned = 0;   ///< elements visited by collection scans
  uint64_t index_probes = 0;       ///< probes into transient/permanent indexes
  uint64_t single_list_refs = 0;   ///< refs materialised into single lists
  uint64_t indirect_join_refs = 0; ///< refs materialised into indirect joins
  uint64_t combination_rows = 0;   ///< rows materialised in the combination phase
  uint64_t division_input_rows = 0;///< rows fed into relational division
  uint64_t quantifier_probes = 0;  ///< strategy-4 value-list probes
  uint64_t comparisons = 0;        ///< join-term comparisons evaluated
  uint64_t dereferences = 0;       ///< construction-phase dereferences
  uint64_t replans = 0;            ///< runtime adaptations (empty ranges)
  uint64_t permanent_index_hits = 0;  ///< transient index builds skipped
  /// Collection structures (single lists / indirect joins) *fully*
  /// materialised. Under the lazy collection policy this stays strictly
  /// below the plan's structure count whenever a cursor closes before
  /// every structure was demanded; keyed-partial and streamed structures
  /// never count. Event count, not work: stays out of TotalWork().
  uint64_t structures_built = 0;
  /// Elements materialised into collection structures: structure rows
  /// (keyed-partial cache rows included), index entries, and value-list
  /// additions. The demand-driven acceptance measure — lazy runs that
  /// stop early build strictly fewer elements than the eager oracle.
  /// Structure rows are already priced in single_list_refs /
  /// indirect_join_refs, so this stays out of TotalWork() too.
  uint64_t structure_elements_built = 0;
  /// Chunks the batched cursor drain pulled from the pipeline sink — 0
  /// on row-at-a-time (`SET BATCH 1;`) and materializing runs. The sink
  /// accumulates full chunks, so for a full drain this is
  /// ceil(result rows / batch size): deterministic for a given plan and
  /// batch size, and invariant under the PARALLEL degree. An event
  /// count, not work: stays out of TotalWork() — every row a batch
  /// carries is already priced by the row counters above.
  uint64_t batches_emitted = 0;
  /// Morsels of the driving structure handed to parallel drain workers —
  /// 0 on serial drains. The morsel grid is a pure function of the
  /// driving structure's size and the PARALLEL degree, so a full drain's
  /// count is deterministic. An event count, not work: stays out of
  /// TotalWork().
  uint64_t morsels_dispatched = 0;
  /// High-water mark of combination-phase rows held live at once:
  /// intermediate join/union/projection relations on the materializing
  /// path, blocking buffers (division input, dedup sinks, bushy builds)
  /// on the pipelined path. Collection structures are excluded — both
  /// paths share them. A memory measure, not work: stays out of
  /// TotalWork() and accumulates by maximum, not sum.
  uint64_t peak_intermediate_rows = 0;

  /// The one place that knows which fields accumulate by sum and which by
  /// maximum (peak_intermediate_rows is a high-water mark, not a flow).
  /// Every accumulation of one ExecStats into another must go through
  /// here — hand-summing fields is exactly the misuse that silently turns
  /// a peak into a total.
  void Merge(const ExecStats& o);

  ExecStats& operator+=(const ExecStats& o) {
    Merge(o);
    return *this;
  }

  /// Aggregate "work" measure used by bench shape checks and the cost
  /// model: everything the evaluator touched. Defined as the sum of
  ///   elements_scanned      (collection-phase relation reads)
  /// + index_probes          (transient/permanent index lookups)
  /// + single_list_refs      (refs materialised into single lists)
  /// + indirect_join_refs    (refs materialised into indirect joins)
  /// + combination_rows      (rows built while joining/unioning/projecting)
  /// + division_input_rows   (rows fed into relational division)
  /// + quantifier_probes     (strategy-4 value-list probes)
  /// + comparisons           (join-term comparisons evaluated)
  /// + dereferences          (construction-phase dereferences)
  /// so collection-phase materialisation is visible alongside scan and
  /// combination work. relations_read, replans, permanent_index_hits and
  /// the structure-build counters are event counts, not work, and stay
  /// out of the sum.
  uint64_t TotalWork() const {
    return elements_scanned + index_probes + single_list_refs +
           indirect_join_refs + combination_rows + division_input_rows +
           quantifier_probes + comparisons + dereferences;
  }

  std::string ToString() const;
};

/// Live-row accounting behind ExecStats::peak_intermediate_rows: every
/// combination-phase materialisation Adds its rows while alive and Subs
/// them when freed; the stats field records the high-water mark. Both
/// combination paths (exec/combination.cc and src/pipeline/) drive one of
/// these, so their peaks are directly comparable.
class PeakTracker {
 public:
  explicit PeakTracker(ExecStats* stats) : stats_(stats) {}

  void Add(uint64_t rows) {
    live_ += rows;
    if (stats_ != nullptr && live_ > stats_->peak_intermediate_rows) {
      stats_->peak_intermediate_rows = live_;
    }
  }

  void Sub(uint64_t rows) { live_ -= rows < live_ ? rows : live_; }

  uint64_t live() const { return live_; }

 private:
  ExecStats* stats_;
  uint64_t live_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_EXEC_STATS_H_
