#include "exec/construction.h"

#include <unordered_set>

namespace pascalr {

Result<std::vector<int>> ResolveProjectionColumns(const QueryPlan& plan,
                                                  const RefRelation& table) {
  return ResolveProjectionColumns(plan, table.columns());
}

Result<std::vector<int>> ResolveProjectionColumns(
    const QueryPlan& plan, const std::vector<std::string>& columns) {
  std::vector<int> column_of_var;
  for (const OutputComponent& oc : plan.sf.projection) {
    int col = -1;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == oc.var) {
        col = static_cast<int>(i);
        break;
      }
    }
    if (col < 0) {
      return Status::Internal("combination result lacks column '" + oc.var +
                              "'");
    }
    column_of_var.push_back(col);
  }
  return column_of_var;
}

Result<Tuple> ConstructRow(const QueryPlan& plan, const RefRow& row,
                           const std::vector<int>& column_of_var,
                           const Database& db, ExecStats* stats) {
  Tuple result;
  for (size_t i = 0; i < plan.sf.projection.size(); ++i) {
    const OutputComponent& oc = plan.sf.projection[i];
    const Ref& ref = row[static_cast<size_t>(column_of_var[i])];
    PASCALR_ASSIGN_OR_RETURN(const Tuple* tuple, db.Deref(ref));
    if (stats != nullptr) ++stats->dereferences;
    result.Append(tuple->at(static_cast<size_t>(oc.component_pos)));
  }
  return result;
}

Result<std::vector<Tuple>> ExecuteConstruction(const QueryPlan& plan,
                                               const RefRelation& table,
                                               const Database& db,
                                               ExecStats* stats) {
  PASCALR_ASSIGN_OR_RETURN(std::vector<int> column_of_var,
                           ResolveProjectionColumns(plan, table));
  std::vector<Tuple> out;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const RefRow& row : table.rows()) {
    PASCALR_ASSIGN_OR_RETURN(
        Tuple result, ConstructRow(plan, row, column_of_var, db, stats));
    if (seen.insert(result).second) out.push_back(std::move(result));
  }
  return out;
}

}  // namespace pascalr
