#include "exec/combination.h"

#include <algorithm>

#include "refstruct/division.h"
#include "refstruct/ops.h"

namespace pascalr {

namespace {

/// Joins the conjunction's structures, preferring joins over products:
/// start from the smallest structure, repeatedly take the smallest
/// remaining structure that shares a column, and fall back to the smallest
/// overall (a genuine Cartesian step) when none connects.
RefRelation JoinStructures(std::vector<const RefRelation*> inputs,
                           ExecStats* stats) {
  if (inputs.empty()) {
    RefRelation unit{std::vector<std::string>{}};
    unit.Add({});  // arity-0 relation containing the empty row: TRUE
    return unit;
  }
  auto smallest = std::min_element(
      inputs.begin(), inputs.end(),
      [](const RefRelation* a, const RefRelation* b) {
        return a->size() < b->size();
      });
  RefRelation acc = **smallest;
  inputs.erase(smallest);
  while (!inputs.empty()) {
    size_t best = inputs.size();
    size_t best_connected = inputs.size();
    for (size_t i = 0; i < inputs.size(); ++i) {
      bool connected = false;
      for (const std::string& col : inputs[i]->columns()) {
        if (acc.ColumnIndex(col) >= 0) {
          connected = true;
          break;
        }
      }
      if (connected && (best_connected == inputs.size() ||
                        inputs[i]->size() < inputs[best_connected]->size())) {
        best_connected = i;
      }
      if (best == inputs.size() || inputs[i]->size() < inputs[best]->size()) {
        best = i;
      }
    }
    size_t pick = best_connected != inputs.size() ? best_connected : best;
    acc = NaturalJoin(acc, *inputs[pick], stats);
    inputs.erase(inputs.begin() + static_cast<long>(pick));
  }
  return acc;
}

}  // namespace

Result<RefRelation> ExecuteCombination(const QueryPlan& plan,
                                       const CollectionResult& coll,
                                       ExecStats* stats) {
  // Active variables: the prefix minus strategy-4 eliminations, in prefix
  // order. Free variables come first by construction.
  std::vector<QuantifiedVar> active;
  for (const QuantifiedVar& qv : plan.sf.prefix) {
    if (!plan.IsEliminated(qv.var)) active.push_back(qv.Clone());
  }
  std::vector<std::string> active_names;
  for (const QuantifiedVar& qv : active) active_names.push_back(qv.var);

  std::vector<std::string> free_names;
  for (const QuantifiedVar& qv : active) {
    if (qv.quantifier == Quantifier::kFree) free_names.push_back(qv.var);
  }

  if (plan.sf.matrix.IsFalse()) {
    return RefRelation(free_names);  // no disjunct: empty result
  }

  // Step 1 + 2: evaluate each conjunction, union the n-tuple sets.
  RefRelation combined(active_names);
  for (size_t c = 0; c < plan.sf.matrix.disjuncts.size(); ++c) {
    std::vector<const RefRelation*> inputs;
    for (size_t id : plan.conj_inputs[c]) {
      inputs.push_back(&coll.structures[id]);
    }
    RefRelation conj_result = JoinStructures(std::move(inputs), stats);
    // Extend to all active variables (the n-tuple invariant of §3.3).
    for (const QuantifiedVar& qv : active) {
      if (conj_result.ColumnIndex(qv.var) >= 0) continue;
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      conj_result = ProductWithRefs(conj_result, qv.var, it->second, stats);
    }
    PASCALR_ASSIGN_OR_RETURN(RefRelation aligned,
                             Project(conj_result, active_names, stats));
    PASCALR_ASSIGN_OR_RETURN(combined, UnionRows(combined, aligned, stats));
  }

  // Step 3: quantifiers right to left.
  for (size_t i = active.size(); i-- > 0;) {
    const QuantifiedVar& qv = active[i];
    if (qv.quantifier == Quantifier::kFree) break;
    if (qv.quantifier == Quantifier::kSome) {
      std::vector<std::string> keep;
      for (const std::string& col : combined.columns()) {
        if (col != qv.var) keep.push_back(col);
      }
      PASCALR_ASSIGN_OR_RETURN(combined, Project(combined, keep, stats));
    } else {
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      PASCALR_ASSIGN_OR_RETURN(
          combined, Divide(combined, qv.var, it->second, stats, plan.division));
    }
  }

  PASCALR_ASSIGN_OR_RETURN(combined, Project(combined, free_names, stats));
  return combined;
}

}  // namespace pascalr
