#include "exec/combination.h"

#include <algorithm>
#include <unordered_set>

#include "joinorder/heuristics.h"
#include "refstruct/division.h"
#include "refstruct/ops.h"

namespace pascalr {

namespace {

/// Size-only summaries of actual structures: the signal the greedy order
/// needs (row counts decide the picks, columns decide connectivity).
std::vector<EstRel> SizeOnlySummaries(
    const std::vector<const RefRelation*>& inputs) {
  std::vector<EstRel> actual;
  actual.reserve(inputs.size());
  for (const RefRelation* rel : inputs) {
    EstRel e;
    e.rows = static_cast<double>(rel->size());
    for (const std::string& col : rel->columns()) e.distinct[col] = e.rows;
    actual.push_back(std::move(e));
  }
  return actual;
}

/// Exact summary of a materialised structure: actual row count and exact
/// per-column distinct counts. The collection phase has already run, so
/// unlike the planner the executor need not estimate its leaves. Costs
/// one hash pass over the structure's refs — bounded by the work the
/// collection phase already spent materialising them.
EstRel ActualSummary(const RefRelation& rel) {
  EstRel out;
  out.rows = static_cast<double>(rel.size());
  for (size_t c = 0; c < rel.columns().size(); ++c) {
    std::unordered_set<uint64_t> seen;
    for (const RefRow& row : rel.rows()) seen.insert(row[c].Hash());
    out.distinct[rel.columns()[c]] = static_cast<double>(seen.size());
  }
  return out;
}

/// Same join order, node for node.
bool SameTreeShape(const JoinTree& a, const JoinTree& b) {
  if (a.nodes.size() != b.nodes.size()) return false;
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    const JoinTreeNode& x = a.nodes[i];
    const JoinTreeNode& y = b.nodes[i];
    if (x.leaf != y.leaf) return false;
    if (x.leaf ? x.input != y.input
               : x.left != y.left || x.right != y.right) {
      return false;
    }
  }
  return true;
}

/// Runtime adaptation for an attached join tree (the same spirit as the
/// Lemma 1 empty-range adaptation): recost the planner's tree and the
/// greedy order against *actual* structure sizes and distinct counts, and
/// only keep the planner's tree if it still predicts substantially fewer
/// materialised rows. The bar is deliberately high — greedy re-ranks the
/// remaining inputs on real intermediate sizes after every join, an
/// adaptivity a precomputed tree lacks, so thin static margins lose to it
/// in practice.
bool TreeStillBeatsGreedy(const JoinTree& tree,
                          const std::vector<const RefRelation*>& inputs) {
  constexpr double kRequiredGain = 0.2;
  // First cut from sizes alone (the only signal greedy's order needs):
  // when the planner's tree IS the greedy order, executing it is the
  // fallback, so skip the per-column distinct pass entirely.
  std::vector<EstRel> actual = SizeOnlySummaries(inputs);
  JoinTree greedy = GreedyJoinOrder(actual);
  if (SameTreeShape(tree, greedy)) return true;
  // The orders differ: summarise exactly and compare. Penalty-free — at
  // this point every materialised row counts the same, Cartesian or not.
  for (size_t i = 0; i < inputs.size(); ++i) {
    actual[i] = ActualSummary(*inputs[i]);
  }
  return JoinTreeCost(tree, actual, /*cross_penalty=*/1.0) <
         (1.0 - kRequiredGain) *
             JoinTreeCost(greedy, actual, /*cross_penalty=*/1.0);
}

/// Executes an explicit join tree bottom-up: NaturalJoin at every
/// internal node, children before parents by construction. On return the
/// result's rows are registered with `tracker` (intermediates have been
/// released and unregistered).
RefRelation ExecuteJoinTree(const JoinTree& tree,
                            const std::vector<const RefRelation*>& inputs,
                            ExecStats* stats, PeakTracker* tracker) {
  if (tree.nodes.back().leaf) {  // single input: a copy of the structure
    RefRelation out = *inputs[tree.nodes.back().input];
    tracker->Add(out.size());
    return out;
  }
  // Leaves are consumed in place — only join results are materialised.
  std::vector<RefRelation> joined(tree.nodes.size());
  std::vector<const RefRelation*> node_rels(tree.nodes.size(), nullptr);
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) {
      node_rels[i] = inputs[node.input];
    } else {
      size_t left = static_cast<size_t>(node.left);
      size_t right = static_cast<size_t>(node.right);
      joined[i] = NaturalJoin(*node_rels[left], *node_rels[right], stats);
      tracker->Add(joined[i].size());
      node_rels[i] = &joined[i];
      // Each node feeds exactly one parent (Matches), so consumed
      // intermediates can be dropped immediately — peak memory stays at
      // the greedy path's accumulator-plus-one profile.
      tracker->Sub(joined[left].size());
      tracker->Sub(joined[right].size());
      joined[left] = RefRelation();
      joined[right] = RefRelation();
      node_rels[left] = nullptr;
      node_rels[right] = nullptr;
    }
  }
  return std::move(joined.back());
}

}  // namespace

JoinTree RuntimeJoinOrder(const QueryPlan& plan, size_t conj,
                          const std::vector<const RefRelation*>& inputs) {
  // Execute the optimizer's join tree when one is attached (and matches
  // these inputs, and still wins once actual structure sizes are in);
  // otherwise the greedy smallest-first heuristic on actual sizes.
  if (conj < plan.join_trees.size() &&
      plan.join_trees[conj].Matches(inputs.size()) &&
      TreeStillBeatsGreedy(plan.join_trees[conj], inputs)) {
    return plan.join_trees[conj];
  }
  return GreedyJoinOrder(SizeOnlySummaries(inputs));
}

Result<RefRelation> ExecuteCombination(const QueryPlan& plan,
                                       const CollectionResult& coll,
                                       ExecStats* stats) {
  PeakTracker tracker(stats);

  // Active variables: the prefix minus strategy-4 eliminations, in prefix
  // order. Free variables come first by construction.
  std::vector<QuantifiedVar> active;
  for (const QuantifiedVar& qv : plan.sf.prefix) {
    if (!plan.IsEliminated(qv.var)) active.push_back(qv.Clone());
  }
  std::vector<std::string> active_names;
  for (const QuantifiedVar& qv : active) active_names.push_back(qv.var);

  std::vector<std::string> free_names;
  for (const QuantifiedVar& qv : active) {
    if (qv.quantifier == Quantifier::kFree) free_names.push_back(qv.var);
  }

  if (plan.sf.matrix.IsFalse()) {
    return RefRelation(free_names);  // no disjunct: empty result
  }

  // Step 1 + 2: evaluate each conjunction, union the n-tuple sets.
  RefRelation combined(active_names);
  for (size_t c = 0; c < plan.sf.matrix.disjuncts.size(); ++c) {
    std::vector<const RefRelation*> inputs;
    for (size_t id : plan.conj_inputs[c]) {
      inputs.push_back(&coll.structures[id]);
    }
    RefRelation conj_result;
    if (inputs.empty()) {
      conj_result = RefRelation(std::vector<std::string>{});
      conj_result.Add({});  // arity-0 relation containing the empty row: TRUE
      tracker.Add(1);
    } else {
      JoinTree tree = RuntimeJoinOrder(plan, c, inputs);
      conj_result = ExecuteJoinTree(tree, inputs, stats, &tracker);
    }
    // Extend to all active variables (the n-tuple invariant of §3.3).
    for (const QuantifiedVar& qv : active) {
      if (conj_result.ColumnIndex(qv.var) >= 0) continue;
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      RefRelation extended =
          ProductWithRefs(conj_result, qv.var, it->second, stats);
      tracker.Add(extended.size());
      tracker.Sub(conj_result.size());
      conj_result = std::move(extended);
    }
    PASCALR_ASSIGN_OR_RETURN(RefRelation aligned,
                             Project(conj_result, active_names, stats));
    tracker.Add(aligned.size());
    tracker.Sub(conj_result.size());
    conj_result.Clear();
    PASCALR_ASSIGN_OR_RETURN(RefRelation next,
                             UnionRows(combined, aligned, stats));
    tracker.Add(next.size());
    tracker.Sub(combined.size());
    tracker.Sub(aligned.size());
    combined = std::move(next);
  }

  // Step 3: quantifiers right to left.
  for (size_t i = active.size(); i-- > 0;) {
    const QuantifiedVar& qv = active[i];
    if (qv.quantifier == Quantifier::kFree) break;
    RefRelation next;
    if (qv.quantifier == Quantifier::kSome) {
      std::vector<std::string> keep;
      for (const std::string& col : combined.columns()) {
        if (col != qv.var) keep.push_back(col);
      }
      PASCALR_ASSIGN_OR_RETURN(next, Project(combined, keep, stats));
    } else {
      auto it = coll.range_refs.find(qv.var);
      if (it == coll.range_refs.end()) {
        return Status::Internal("no materialised range for '" + qv.var + "'");
      }
      PASCALR_ASSIGN_OR_RETURN(
          next, Divide(combined, qv.var, it->second, stats, plan.division));
    }
    tracker.Add(next.size());
    tracker.Sub(combined.size());
    combined = std::move(next);
  }

  {
    PASCALR_ASSIGN_OR_RETURN(RefRelation final_rel,
                             Project(combined, free_names, stats));
    tracker.Add(final_rel.size());
    tracker.Sub(combined.size());
    combined = std::move(final_rel);
  }
  return combined;
}

}  // namespace pascalr
