// The combination phase (paper §3.3, step 2): manipulates only reference
// relations. Per conjunction it joins the collected structures into
// n-tuples of references (n = number of prefix variables still active),
// unions the disjuncts, and evaluates quantifiers right to left —
// projection for SOME, relational division for ALL.

#ifndef PASCALR_EXEC_COMBINATION_H_
#define PASCALR_EXEC_COMBINATION_H_

#include "base/status.h"
#include "exec/collection.h"
#include "exec/plan.h"
#include "exec/stats.h"

namespace pascalr {

/// Returns the reference relation over the free variables that satisfies
/// the whole selection expression.
Result<RefRelation> ExecuteCombination(const QueryPlan& plan,
                                       const CollectionResult& coll,
                                       ExecStats* stats);

/// The executor's runtime join-order decision for one conjunction's
/// actual inputs (non-empty): the plan's attached tree when it matches
/// and — recosted against actual structure sizes — still beats the greedy
/// smallest-first order by the required margin, otherwise that greedy
/// order reified as a left-deep JoinTree. Exposed so the materializing
/// and pipelined (src/pipeline/) combination paths make the identical
/// choice.
JoinTree RuntimeJoinOrder(const QueryPlan& plan, size_t conj,
                          const std::vector<const RefRelation*>& inputs);

}  // namespace pascalr

#endif  // PASCALR_EXEC_COMBINATION_H_
