#include "exec/cursor.h"

#include <chrono>

#include "base/logging.h"
#include "exec/combination.h"
#include "exec/construction.h"
#include "obs/profile.h"
#include "obs/span_names.h"
#include "obs/trace.h"

namespace pascalr {

namespace {

const ExecStats kEmptyStats;
const CollectionResult kEmptyCollection;

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Cursor& Cursor::operator=(Cursor&& other) noexcept {
  if (this == &other) return *this;
  Close();
  plan_ = std::move(other.plan_);
  db_ = other.db_;
  sink_ = other.sink_;
  close_hook_ = std::move(other.close_hook_);
  run_ = std::move(other.run_);
  open_ = other.open_;
  // The moved-from cursor must not flush the sink (or fire the close
  // hook) again on destruction.
  other.open_ = false;
  other.sink_ = nullptr;
  other.close_hook_ = nullptr;
  other.plan_.reset();
  return *this;
}

Result<Cursor> Cursor::Open(std::shared_ptr<const QueryPlan> plan,
                            const Database& db, ExecStats* sink,
                            PipelineProfile* profile) {
  if (plan == nullptr) return Status::InvalidArgument("cursor needs a plan");
  Cursor c;
  c.plan_ = std::move(plan);
  c.db_ = &db;
  c.sink_ = sink;
  c.run_ = std::make_unique<RunState>();
  RunState& run = *c.run_;
  run.snapshot = CurrentSnapshotRef();
  run.tracer = Tracer::Current();
  run.profile = profile;
  run.builders =
      std::make_unique<CollectionBuilders>(*c.plan_, db, &run.stats);
  // Laziness only pays on the pipelined path: the materializing
  // combination joins every structure at Open, so it forces a full build
  // regardless of policy.
  const bool lazy = c.plan_->pipeline &&
                    c.plan_->collection == CollectionPolicy::kLazy;
  if (!lazy) {
    TraceSpanGuard span(spans::kCollection, &run.stats);
    PASCALR_RETURN_IF_ERROR(run.builders->EnsureAll());
  }
  if (c.plan_->pipeline) {
    // Streamed combination: compile the iterator tree now, join (and,
    // under the lazy policy, collect) later — Next pulls rows on demand.
    // Every compile failure is an invariant violation (there is no
    // legitimate decline today); the materializing fallback below keeps
    // the query correct, but the failure must not pass silently or a
    // pipeline bug ships as an invisible perf regression.
    Result<CompiledPipeline> compiled = CompilePipeline(
        *c.plan_, run.builders.get(), &run.stats, &run.tracker, profile);
    if (!compiled.ok()) {
      PASCALR_LOG_WARNING << "pipeline compile failed, falling back to "
                             "materializing combination: "
                          << compiled.status().ToString();
    }
    if (compiled.ok() && compiled->ok()) {
      run.pipeline = std::move(compiled).value();
      PASCALR_ASSIGN_OR_RETURN(
          run.column_of_var,
          ResolveProjectionColumns(*c.plan_, run.pipeline.columns));
      if (profile != nullptr) {
        // Construction (dereference + projection + dedup) runs in the
        // cursor above the pipeline sink; a node of its own lets EXPLAIN
        // ANALYZE attribute that per-tuple time too.
        run.root_prof = profile->Add("construct", -1.0, {profile->root()});
        profile->SetRoot(run.root_prof);
      }
      run.stats_at_open = run.stats;
      c.open_ = true;
      return c;
    }
  }
  // Materializing fallback: needs the whole collection up front (a no-op
  // unless the lazy policy skipped it above).
  {
    TraceSpanGuard span(spans::kCollection, &run.stats);
    PASCALR_RETURN_IF_ERROR(run.builders->EnsureAll());
  }
  {
    TraceSpanGuard span(spans::kCombination, &run.stats);
    const uint64_t t0 = profile != nullptr ? MonotonicNowNs() : 0;
    PASCALR_ASSIGN_OR_RETURN(
        run.combined,
        ExecuteCombination(*c.plan_, run.builders->result(), &run.stats));
    if (profile != nullptr) {
      // No iterator tree to instrument here: one phase-level node carries
      // the whole blocking combination.
      int mat = profile->Add("materialized-combination", -1.0, {});
      OpProfile* p = profile->prof(mat);
      p->open_calls = 1;
      p->next_calls = 1;
      p->rows_out = run.combined.rows().size();
      p->time_ns = MonotonicNowNs() - t0;
      run.root_prof = profile->Add("construct", -1.0, {mat});
      profile->SetRoot(run.root_prof);
    }
  }
  PASCALR_ASSIGN_OR_RETURN(run.column_of_var,
                           ResolveProjectionColumns(*c.plan_, run.combined));
  run.stats_at_open = run.stats;
  c.open_ = true;
  return c;
}

Result<bool> Cursor::Next(Tuple* out) {
  if (!open_) return false;
  RunState& run = *run_;
  // Re-install the Open-time snapshot: the cursor reads at its own
  // capture point no matter what the calling thread has current now.
  ScopedSnapshotInstall install_snapshot(run.snapshot);
  // The untraced, unprofiled path (every normal query) takes zero
  // instrumentation: no clock read, no counter touched.
  const bool timed = run.tracer != nullptr || run.root_prof >= 0;
  if (!timed) return NextImpl(out);
  const uint64_t t0 = MonotonicNowNs();
  if (run.tracer != nullptr && run.drain_ns == 0 && run.rows_emitted == 0) {
    run.drain_start_ns = run.tracer->NowNs();
  }
  Result<bool> result = NextImpl(out);
  const uint64_t dt = MonotonicNowNs() - t0;
  run.drain_ns += dt;
  const bool produced = result.ok() && result.value();
  if (produced) ++run.rows_emitted;
  if (run.root_prof >= 0) {
    OpProfile* p = run.profile->prof(run.root_prof);
    p->open_calls = 1;
    ++p->next_calls;
    p->time_ns += dt;
    if (produced) ++p->rows_out;
  }
  return result;
}

Result<bool> Cursor::NextImpl(Tuple* out) {
  RunState& run = *run_;
  if (run.pipeline.ok()) {
    if (plan_->batch_size > 1) {
      // Batched drain: refill a column-major chunk from the sink, then
      // construct tuples row-by-row out of it. The sink accumulates
      // full chunks, so batches_emitted is ceil(rows / batch) for a
      // full drain regardless of upstream (morsel) chunking.
      while (true) {
        if (run.chunk_pos >= run.chunk.rows) {
          run.chunk.capacity = plan_->batch_size;
          PASCALR_ASSIGN_OR_RETURN(bool more,
                                   run.pipeline.root->NextBatch(&run.chunk));
          if (!more) return false;
          run.chunk_pos = 0;
          ++run.stats.batches_emitted;
        }
        run.chunk.RowAt(run.chunk_pos++, &run.scratch);
        PASCALR_ASSIGN_OR_RETURN(
            Tuple tuple, ConstructRow(*plan_, run.scratch, run.column_of_var,
                                      *db_, &run.stats));
        if (!run.seen.insert(tuple).second) continue;  // duplicate row
        *out = std::move(tuple);
        return true;
      }
    }
    RefRow row;
    while (true) {
      PASCALR_ASSIGN_OR_RETURN(bool more, run.pipeline.root->Next(&row));
      if (!more) return false;
      PASCALR_ASSIGN_OR_RETURN(
          Tuple tuple,
          ConstructRow(*plan_, row, run.column_of_var, *db_, &run.stats));
      if (!run.seen.insert(tuple).second) continue;  // duplicate row
      *out = std::move(tuple);
      return true;
    }
  }
  while (run.row < run.combined.rows().size()) {
    const RefRow& row = run.combined.row(run.row++);
    PASCALR_ASSIGN_OR_RETURN(
        Tuple tuple,
        ConstructRow(*plan_, row, run.column_of_var, *db_, &run.stats));
    if (!run.seen.insert(tuple).second) continue;  // duplicate row
    *out = std::move(tuple);
    return true;
  }
  return false;
}

void Cursor::Close() {
  if (!open_) return;
  open_ = false;
  if (run_ != nullptr) {
    ScopedSnapshotInstall install_snapshot(run_->snapshot);
    // One complete span for the whole drain (per-Next spans would dwarf
    // the trace), carrying the run-time counter deltas.
    if (run_->tracer != nullptr && run_->drain_ns > 0) {
      auto counters = ExecStatsDelta(run_->stats_at_open, run_->stats);
      counters.emplace_back("rows_emitted", run_->rows_emitted);
      run_->tracer->AddCompleteSpan(spans::kDrain, "", run_->drain_start_ns,
                                    run_->drain_ns, std::move(counters));
    }
    // Tear down the iterator tree first: its operators hold pointers into
    // the plan and the collection builders.
    run_->pipeline.root.reset();
    if (sink_ != nullptr) sink_->Merge(run_->stats);
    if (close_hook_) {
      // seen's size is exactly the emitted-tuple count on both execution
      // paths (every emitted tuple passes dedup), unlike rows_emitted
      // which only counts when a tracer is attached.
      close_hook_(run_->stats, run_->seen.size());
    }
  }
  close_hook_ = nullptr;
  sink_ = nullptr;
  plan_.reset();
}

const ExecStats& Cursor::stats() const {
  return run_ == nullptr ? kEmptyStats : run_->stats;
}

const CollectionResult& Cursor::collection() const {
  return run_ == nullptr || run_->builders == nullptr ? kEmptyCollection
                                                      : run_->builders->result();
}

CollectionResult Cursor::ReleaseCollection() {
  if (run_ == nullptr || run_->builders == nullptr) return CollectionResult();
  // The iterators populate and probe the structures in place; a released
  // collection must not be touched again.
  run_->pipeline.root.reset();
  return run_->builders->Release();
}

size_t Cursor::rows_pending() const {
  if (run_ == nullptr || run_->pipeline.ok()) return 0;
  const size_t total = run_->combined.rows().size();
  return total - std::min(run_->row, total);
}

}  // namespace pascalr
