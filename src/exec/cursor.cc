#include "exec/cursor.h"

#include "exec/combination.h"
#include "exec/construction.h"

namespace pascalr {

Cursor& Cursor::operator=(Cursor&& other) noexcept {
  if (this == &other) return *this;
  Close();
  plan_ = std::move(other.plan_);
  db_ = other.db_;
  sink_ = other.sink_;
  stats_ = other.stats_;
  collection_ = std::move(other.collection_);
  combined_ = std::move(other.combined_);
  column_of_var_ = std::move(other.column_of_var_);
  seen_ = std::move(other.seen_);
  row_ = other.row_;
  open_ = other.open_;
  // The moved-from cursor must not flush the sink again on destruction.
  other.open_ = false;
  other.sink_ = nullptr;
  other.plan_.reset();
  return *this;
}

Result<Cursor> Cursor::Open(std::shared_ptr<const QueryPlan> plan,
                            const Database& db, ExecStats* sink) {
  if (plan == nullptr) return Status::InvalidArgument("cursor needs a plan");
  Cursor c;
  c.plan_ = std::move(plan);
  c.db_ = &db;
  c.sink_ = sink;
  PASCALR_ASSIGN_OR_RETURN(c.collection_,
                           ExecuteCollection(*c.plan_, db, &c.stats_));
  PASCALR_ASSIGN_OR_RETURN(
      c.combined_, ExecuteCombination(*c.plan_, c.collection_, &c.stats_));
  PASCALR_ASSIGN_OR_RETURN(c.column_of_var_,
                           ResolveProjectionColumns(*c.plan_, c.combined_));
  c.open_ = true;
  return c;
}

Result<bool> Cursor::Next(Tuple* out) {
  if (!open_) return false;
  while (row_ < combined_.rows().size()) {
    const RefRow& row = combined_.row(row_++);
    PASCALR_ASSIGN_OR_RETURN(
        Tuple tuple,
        ConstructRow(*plan_, row, column_of_var_, *db_, &stats_));
    if (!seen_.insert(tuple).second) continue;  // duplicate row
    *out = std::move(tuple);
    return true;
  }
  return false;
}

void Cursor::Close() {
  if (!open_) return;
  open_ = false;
  if (sink_ != nullptr) *sink_ += stats_;
  sink_ = nullptr;
  plan_.reset();
}

}  // namespace pascalr
